"""SLO accounting: latency percentiles, deadline misses, throughput.

The tracker collects every :class:`~repro.serving.request.DecodeResponse`
of a session and folds them into a :class:`ServingReport` — the serving
counterpart of :class:`~repro.sim.runner.SimulationReport` and
:class:`~repro.dse.result.DseResult`: a frozen record that renders as a
table and round-trips through JSON (:func:`report_to_json` /
:func:`report_from_json`) so CI can archive it as an artifact.

Percentiles use the nearest-rank definition (p-th percentile = smallest
value with at least p% of samples at or below it), so a report is an
exact function of the observed latencies — no interpolation noise.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field

from repro.serving.request import DecodeResponse
from repro.utils.tables import render_table


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in 0..100)."""
    if not samples:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100]: {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class GroupReport:
    """Per-replica-group SLO slice of a cluster serving session."""

    name: str
    policy: str
    transport: str
    replicas: int
    max_batch: int
    batch_window_ms: float
    submitted: int  # requests the router admitted into this group
    shed: int  # requests routed here but rejected by admission control
    completed: int
    deadline_misses: int
    latency_p50_ms: float
    latency_p99_ms: float
    mean_batch_size: float
    mean_utilization: float
    #: Replicas added / drained by autoscaling during the session (0 on
    #: the coroutine path, which serves fixed fleets).
    scale_ups: int = 0
    scale_downs: int = 0
    #: Transport-level reconnections during the session (only a
    #: :class:`~repro.dist.remote_transport.RemoteTransport` can
    #: reconnect; 0 for in-process and subprocess transports).
    reconnects: int = 0
    #: Final transport health ("" for transports that do not track it;
    #: remote transports report ``connected`` / ``closed`` / ``failed``).
    health: str = ""
    #: Chaos/recovery accounting (all zero on a fault-free session —
    #: older JSON payloads without these fields keep loading).
    failed: int = 0  # frames that exhausted retries (or had no replica)
    retries: int = 0  # re-enqueues after a batch failure
    hedges: int = 0  # duplicate dispatches to a second replica
    hedge_wins: int = 0  # hedges that finished before the primary
    failovers: int = 0  # frames diverted *to* this group from another
    replicas_lost: int = 0  # replicas that died mid-session
    replicas_replaced: int = 0  # cold replacements provisioned
    degraded_time_ms: float = 0.0  # stall time + degraded service time

    @property
    def offered(self) -> int:
        """Requests the router sent this way, admitted or shed."""
        return self.submitted + self.shed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def failed_rate(self) -> float:
        """Fraction of admitted requests that were never served."""
        return self.failed / self.submitted if self.submitted else 0.0


@dataclass(frozen=True)
class ServingReport:
    """SLO summary of one serving session.

    Units, once and for all: every ``*_ms`` field is milliseconds of
    *session* time (virtual milliseconds on the deterministic clock);
    ``submitted`` / ``completed`` / ``shed`` / ``deadline_misses`` count
    individual frame requests; ``batches`` counts replica dispatches;
    ``replica_utilization`` is busy-time fractions in ``[0, 1]``, one
    entry per replica (every replica that ever served, under
    autoscaling); throughput properties are frames per second. Both
    serving engines — the coroutine scheduler and the event-heap engine
    — produce this same record, so ``render()``, the JSON round-trip,
    and every report consumer work identically for either.
    """

    policy: str
    avatars: int
    replicas: int
    max_batch: int
    batch_window_ms: float
    submitted: int
    completed: int
    duration_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    queue_mean_ms: float
    deadline_ms: float
    #: Per-avatar deadline budgets when the workload used tiers (empty
    #: means every request had the flat ``deadline_ms`` budget).
    deadline_tiers_ms: tuple[float, ...]
    deadline_misses: int
    batches: int
    mean_batch_size: float
    replica_utilization: tuple[float, ...]
    per_avatar_p99_ms: tuple[float, ...] = field(default=())
    #: Requests rejected by admission control (never reached a replica).
    #: ``submitted`` counts them — they entered the front door — so
    #: ``completed + shed == submitted`` in a fully drained session.
    shed: int = 0
    #: Routing policy of the cluster session ("" for a single pool served
    #: directly by one :class:`~repro.serving.scheduler.BatchScheduler`).
    router: str = ""
    #: Per-group SLO slices of a cluster session (empty for a single pool).
    groups: tuple[GroupReport, ...] = field(default=())
    #: Which serving engine produced the report: "" for the coroutine
    #: scheduler (the historical default), "heap" for the event-heap
    #: engine (:mod:`repro.serving.engine`).
    engine: str = ""
    #: Traffic shape the session's trace was generated from ("" for
    #: workload-driven sessions).
    shape: str = ""
    #: Autoscaling activity: replicas added / drained across all groups
    #: (both 0 when autoscaling was off), and the peak number of
    #: provisioned replicas alive at any instant (0 means "not tracked",
    #: i.e. a coroutine-path report).
    scale_ups: int = 0
    scale_downs: int = 0
    peak_replicas: int = 0
    #: Transport-level reconnections across every group in the session
    #: (0 unless a remote transport had to re-dial its replica server).
    reconnects: int = 0
    #: Chaos/recovery accounting, summed across groups (all zero on a
    #: fault-free session; see :class:`GroupReport` for the per-field
    #: meanings). ``completed + shed + failed == submitted`` in a fully
    #: drained session — no frame ever hangs.
    failed: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    failovers: int = 0
    replicas_lost: int = 0
    replicas_replaced: int = 0
    degraded_time_ms: float = 0.0

    @property
    def failed_rate(self) -> float:
        """Fraction of submitted requests that were never served."""
        return self.failed / self.submitted if self.submitted else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of completed frames that blew their deadline."""
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests rejected by admission control.

        The load-shedding SLO: what share of the offered traffic the
        cluster refused in order to keep the accepted share inside its
        deadlines. 0.0 whenever admission control is off.
        """
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def throughput_fps(self) -> float:
        """Decoded frames per second of session time, all avatars together."""
        return (
            1000.0 * self.completed / self.duration_ms
            if self.duration_ms > 0
            else 0.0
        )

    @property
    def deadline_label(self) -> str:
        """The budget(s) misses were counted against, for display."""
        if self.deadline_tiers_ms:
            tiers = "/".join(f"{t:.0f}" for t in self.deadline_tiers_ms)
            return f"@tiers {tiers} ms"
        return f"@{self.deadline_ms:.0f} ms"

    @property
    def mean_utilization(self) -> float:
        if not self.replica_utilization:
            return 0.0
        return sum(self.replica_utilization) / len(self.replica_utilization)

    def render(self) -> str:
        rows = [
            ["avatars / replicas", f"{self.avatars} / {self.replicas}"],
            [
                "workload",
                f"{self.completed}/{self.submitted} frames in "
                f"{self.duration_ms:.1f} ms",
            ],
        ]
        if self.engine:
            label = self.engine + (f" / {self.shape}" if self.shape else "")
            rows.append(["engine", label])
        if self.scale_ups or self.scale_downs:
            rows.append(
                [
                    "autoscale",
                    f"+{self.scale_ups} / -{self.scale_downs} replicas "
                    f"(peak {self.peak_replicas})",
                ]
            )
        if self.router:
            rows.append(["router", self.router])
        if self.reconnects:
            rows.append(["transport reconnects", str(self.reconnects)])
        if self.shed or self.router:
            rows.append(
                ["shed", f"{self.shed} ({100 * self.shed_rate:.1f}%)"]
            )
        if self.failed or self.retries or self.hedges or self.failovers:
            rows.append(
                ["failed", f"{self.failed} ({100 * self.failed_rate:.1f}%)"]
            )
            rows.append(
                [
                    "recovery",
                    f"{self.retries} retries, {self.hedges} hedges "
                    f"({self.hedge_wins} won), {self.failovers} failovers",
                ]
            )
        if self.replicas_lost or self.replicas_replaced:
            rows.append(
                [
                    "replicas lost/replaced",
                    f"{self.replicas_lost} / {self.replicas_replaced}",
                ]
            )
        if self.degraded_time_ms:
            rows.append(["degraded time", f"{self.degraded_time_ms:.1f} ms"])
        rows += [
            ["throughput", f"{self.throughput_fps:.1f} FPS"],
            [
                "latency p50/p95/p99",
                f"{self.latency_p50_ms:.2f} / {self.latency_p95_ms:.2f} / "
                f"{self.latency_p99_ms:.2f} ms",
            ],
            [
                "latency mean/max",
                f"{self.latency_mean_ms:.2f} / {self.latency_max_ms:.2f} ms",
            ],
            ["queue wait (mean)", f"{self.queue_mean_ms:.2f} ms"],
            [
                f"deadline misses ({self.deadline_label})",
                f"{self.deadline_misses} ({100 * self.miss_rate:.1f}%)",
            ],
            [
                "batches",
                f"{self.batches} (mean size {self.mean_batch_size:.2f}, "
                f"window {self.batch_window_ms:.1f} ms)",
            ],
            [
                "replica utilization",
                " ".join(f"{100 * u:.0f}%" for u in self.replica_utilization)
                or "-",
            ],
        ]
        for group in self.groups:
            health = f" [{group.health}]" if group.health else ""
            chaos = ""
            if group.failed or group.replicas_lost or group.replicas_replaced:
                chaos = (
                    f", {group.failed} failed, "
                    f"-{group.replicas_lost}/+{group.replicas_replaced} "
                    f"replicas"
                )
            rows.append(
                [
                    f"group {group.name}",
                    f"{group.replicas}x {group.policy}/{group.transport}"
                    f"{health}: "
                    f"{group.completed} done, {group.shed} shed, "
                    f"{group.deadline_misses} missed, p99 "
                    f"{group.latency_p99_ms:.2f} ms{chaos}",
                ]
            )
        return render_table(
            ["SLO", "value"],
            rows,
            title=f"Serving report ({self.policy})",
        )


class SloTracker:
    """Accumulates responses while a session runs."""

    def __init__(
        self,
        deadline_ms: float,
        deadline_tiers_ms: tuple[float, ...] = (),
    ) -> None:
        self.deadline_ms = deadline_ms
        self.deadline_tiers_ms = deadline_tiers_ms
        self.responses: list[DecodeResponse] = []
        self.submitted = 0
        self.shed = 0
        self.batch_sizes: list[int] = []
        self.failed = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.replicas_lost = 0
        self.replicas_replaced = 0
        self.degraded_time_ms = 0.0

    def record_submit(self) -> None:
        """One request entered the front door (admitted or later shed)."""
        self.submitted += 1

    def record_shed(self) -> None:
        """One request rejected by admission control (still submitted)."""
        self.submitted += 1
        self.shed += 1

    def record_batch(self, size: int) -> None:
        """One batch of ``size`` frames dispatched to a replica."""
        self.batch_sizes.append(size)

    def record(self, response: DecodeResponse) -> None:
        """One frame finished decoding (with its full timing record)."""
        self.responses.append(response)

    def record_failed(self) -> None:
        """One admitted request permanently failed (retries exhausted)."""
        self.failed += 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_hedge(self) -> None:
        self.hedges += 1

    def record_hedge_win(self) -> None:
        self.hedge_wins += 1

    def record_failover(self) -> None:
        """One request diverted here from its preferred (broken) group."""
        self.failovers += 1

    def record_replica_lost(self) -> None:
        self.replicas_lost += 1

    def record_replica_replaced(self) -> None:
        self.replicas_replaced += 1

    def add_degraded_time(self, ms: float) -> None:
        self.degraded_time_ms += ms

    def merge(self, other: "SloTracker") -> None:
        """Fold another tracker's session into this one.

        The cluster session keeps one tracker per replica group and folds
        them into an aggregate for the cluster-wide report; percentiles
        and means are order-independent, so merging after the fact equals
        having tracked centrally.
        """
        self.responses.extend(other.responses)
        self.submitted += other.submitted
        self.shed += other.shed
        self.batch_sizes.extend(other.batch_sizes)
        self.failed += other.failed
        self.retries += other.retries
        self.hedges += other.hedges
        self.hedge_wins += other.hedge_wins
        self.failovers += other.failovers
        self.replicas_lost += other.replicas_lost
        self.replicas_replaced += other.replicas_replaced
        self.degraded_time_ms += other.degraded_time_ms

    def report(
        self,
        policy: str,
        avatars: int,
        duration_ms: float,
        replica_utilization: tuple[float, ...],
        max_batch: int,
        batch_window_ms: float,
        router: str = "",
        groups: tuple[GroupReport, ...] = (),
        reconnects: int = 0,
    ) -> ServingReport:
        latencies = [r.latency_ms for r in self.responses]
        queue_waits = [r.queue_ms for r in self.responses]
        per_avatar: dict[int, list[float]] = {}
        for response in self.responses:
            per_avatar.setdefault(response.request.avatar_id, []).append(
                response.latency_ms
            )
        return ServingReport(
            policy=policy,
            avatars=avatars,
            replicas=len(replica_utilization),
            max_batch=max_batch,
            batch_window_ms=batch_window_ms,
            submitted=self.submitted,
            completed=len(self.responses),
            duration_ms=duration_ms,
            latency_p50_ms=percentile(latencies, 50),
            latency_p95_ms=percentile(latencies, 95),
            latency_p99_ms=percentile(latencies, 99),
            latency_mean_ms=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            latency_max_ms=max(latencies, default=0.0),
            queue_mean_ms=(
                sum(queue_waits) / len(queue_waits) if queue_waits else 0.0
            ),
            deadline_ms=self.deadline_ms,
            deadline_tiers_ms=self.deadline_tiers_ms,
            deadline_misses=sum(
                1 for r in self.responses if r.deadline_missed
            ),
            batches=len(self.batch_sizes),
            mean_batch_size=(
                sum(self.batch_sizes) / len(self.batch_sizes)
                if self.batch_sizes
                else 0.0
            ),
            replica_utilization=replica_utilization,
            per_avatar_p99_ms=tuple(
                percentile(per_avatar[a], 99) for a in sorted(per_avatar)
            ),
            shed=self.shed,
            router=router,
            groups=groups,
            reconnects=reconnects,
            failed=self.failed,
            retries=self.retries,
            hedges=self.hedges,
            hedge_wins=self.hedge_wins,
            failovers=self.failovers,
            replicas_lost=self.replicas_lost,
            replicas_replaced=self.replicas_replaced,
            degraded_time_ms=self.degraded_time_ms,
        )


def report_to_json(report: ServingReport, indent: int = 2) -> str:
    """Serialize a report (derived SLOs included, for easy dashboards)."""
    payload = asdict(report)
    payload["miss_rate"] = report.miss_rate
    payload["shed_rate"] = report.shed_rate
    payload["failed_rate"] = report.failed_rate
    payload["throughput_fps"] = report.throughput_fps
    payload["mean_utilization"] = report.mean_utilization
    for group_payload, group in zip(payload["groups"], report.groups):
        group_payload["shed_rate"] = group.shed_rate
        group_payload["miss_rate"] = group.miss_rate
        group_payload["failed_rate"] = group.failed_rate
    return json.dumps(payload, indent=indent)


def report_from_json(text: str) -> ServingReport:
    """Rebuild a :class:`ServingReport` from :func:`report_to_json` output.

    Tolerant of *older* payloads: fields added since (engine, shape,
    autoscale counters, per-group slices…) fall back to their dataclass
    defaults, so archived CI reports keep loading as the record grows.
    """
    payload = json.loads(text)
    for derived in (
        "miss_rate",
        "shed_rate",
        "failed_rate",
        "throughput_fps",
        "mean_utilization",
    ):
        payload.pop(derived, None)
    payload["replica_utilization"] = tuple(payload["replica_utilization"])
    payload["deadline_tiers_ms"] = tuple(
        payload.get("deadline_tiers_ms", ())
    )
    payload["per_avatar_p99_ms"] = tuple(
        payload.get("per_avatar_p99_ms", ())
    )
    groups = []
    for group_payload in payload.get("groups", ()):
        group_payload = dict(group_payload)
        group_payload.pop("shed_rate", None)
        group_payload.pop("miss_rate", None)
        group_payload.pop("failed_rate", None)
        groups.append(GroupReport(**group_payload))
    payload["groups"] = tuple(groups)
    return ServingReport(**payload)


__all__ = [
    "GroupReport",
    "ServingReport",
    "SloTracker",
    "percentile",
    "report_from_json",
    "report_to_json",
]
