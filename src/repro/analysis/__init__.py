"""The paper's Analysis step (Fig. 4, Step 1)."""

from repro.analysis.analyzer import BranchInfo, NetworkAnalysis, analyze_network

__all__ = ["BranchInfo", "NetworkAnalysis", "analyze_network"]
