"""Network analysis — the first step of the F-CAD flow.

F-CAD "starts analyzing the targeted network by extracting not only
layer-wise information (e.g., layer types, layer configurations), but also
branch-wise information (e.g., branch number, number of layers in each
branch, and layer dependencies). Then, the profiler begins to calculate the
compute and memory demands of each layer and provides statistics on
branch-wise demands."

:func:`analyze_network` bundles those products into one object the
Construction and Optimization steps (and user reports) consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import NetworkGraph
from repro.profiler.network import NetworkProfile, profile_network
from repro.profiler.report import render_branch_table, render_layer_table
from repro.utils.units import GIGA, format_count


@dataclass(frozen=True)
class BranchInfo:
    """Branch-wise structure: the paper's 'branch number, number of layers
    in each branch, and layer dependencies'."""

    index: int
    output_name: str
    num_layers: int
    num_shared_layers: int
    depends_on_inputs: tuple[str, ...]

    @property
    def has_shared_part(self) -> bool:
        return self.num_shared_layers > 0


@dataclass(frozen=True)
class NetworkAnalysis:
    """Everything Step 1 extracts from the targeted network."""

    graph_name: str
    num_branches: int
    branch_info: tuple[BranchInfo, ...]
    profile: NetworkProfile

    @property
    def total_gop(self) -> float:
        return self.profile.total_ops / GIGA

    @property
    def total_params(self) -> int:
        return self.profile.total_params

    def render(self) -> str:
        lines = [
            f"Analysis of {self.graph_name!r}: {self.num_branches} branches, "
            f"{self.total_gop:.1f} GOP, {format_count(self.total_params)} params",
        ]
        for info in self.branch_info:
            shared = (
                f", {info.num_shared_layers} shared"
                if info.has_shared_part
                else ""
            )
            lines.append(
                f"  Br.{info.index + 1} ({info.output_name}): "
                f"{info.num_layers} layers{shared}; "
                f"inputs: {', '.join(info.depends_on_inputs)}"
            )
        lines.append("")
        lines.append(render_branch_table(self.profile))
        lines.append("")
        lines.append(render_layer_table(self.profile))
        return "\n".join(lines)


def analyze_network(graph: NetworkGraph) -> NetworkAnalysis:
    """Run the Analysis step on a validated network graph."""
    graph.validate()
    profile = profile_network(graph)
    membership = graph.branch_membership()
    inputs = set(graph.input_names())

    branch_info = []
    for branch in profile.branches:
        members = set(branch.node_names)
        # Input nodes are data sources, not layers.
        layers = [name for name in branch.node_names if name not in inputs]
        shared = [name for name in layers if len(membership[name]) > 1]
        branch_inputs = tuple(
            name for name in graph.input_names() if name in members
        )
        branch_info.append(
            BranchInfo(
                index=branch.index,
                output_name=branch.output_name,
                num_layers=len(layers),
                num_shared_layers=len(shared),
                depends_on_inputs=branch_inputs,
            )
        )

    return NetworkAnalysis(
        graph_name=graph.name,
        num_branches=len(profile.branches),
        branch_info=tuple(branch_info),
        profile=profile,
    )
