"""Multi-branch DNN intermediate representation.

The IR is the contract between the model zoo / frontend (which produce
networks), the profiler and construction steps (which analyse them), and the
runtime (which executes them).
"""

from repro.ir.builder import GraphBuilder
from repro.ir.graph import GraphError, NetworkGraph, Node
from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Layer,
    Linear,
    MaxPool,
    Reshape,
    ShapeError,
    TensorShape,
    Upsample,
)
from repro.ir.serialize import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)

__all__ = [
    "Activation",
    "BiasMode",
    "Concat",
    "Conv2d",
    "Flatten",
    "GraphBuilder",
    "GraphError",
    "Input",
    "Layer",
    "Linear",
    "MaxPool",
    "NetworkGraph",
    "Node",
    "Reshape",
    "ShapeError",
    "TensorShape",
    "Upsample",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
]
