"""Layer definitions for the multi-branch DNN IR.

Every layer is an immutable dataclass that knows how to

- infer its output shape from input shapes (``infer_shape``),
- count its multiply-accumulates (``macs``),
- count its parameters split into weights and biases (``weight_params`` /
  ``bias_params``).

Shapes are channel-height-width (:class:`TensorShape`); vectors are
represented as ``(features, 1, 1)``.

The *customized Conv* of the paper — per-output-pixel ("untied") biases —
is :class:`Conv2d` with ``bias=BiasMode.UNTIED``; its bias parameter count
then grows with the output resolution, which is exactly the property that
makes the codec-avatar decoder memory-hungry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ShapeError(ValueError):
    """Raised when shapes do not line up with a layer's expectations."""


@dataclass(frozen=True, order=True)
class TensorShape:
    """A channels-height-width tensor shape."""

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if min(self.channels, self.height, self.width) <= 0:
            raise ShapeError(f"all dimensions must be positive: {self}")

    @property
    def numel(self) -> int:
        return self.channels * self.height * self.width

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.channels, self.height, self.width)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.channels},{self.height},{self.width}]"


class BiasMode(str, enum.Enum):
    """Bias flavour of a compute layer.

    ``UNTIED`` is the paper's customized Conv: one bias per output *pixel*
    rather than one per output channel.
    """

    NONE = "none"
    TIED = "tied"
    UNTIED = "untied"


def _same_padding(size: int, kernel: int, stride: int) -> tuple[int, int]:
    """TensorFlow-style SAME padding (supports even kernels asymmetrically)."""
    out = -(-size // stride)
    total = max((out - 1) * stride + kernel - size, 0)
    low = total // 2
    return low, total - low


def conv_output_size(size: int, kernel: int, stride: int, padding: int | str) -> int:
    """Output spatial size of a conv/pool window sweep."""
    if isinstance(padding, str):
        if padding == "same":
            return -(-size // stride)
        if padding == "valid":
            pad_total = 0
        else:
            raise ShapeError(f"padding must be 'same', 'valid' or an int: {padding!r}")
    else:
        pad_total = 2 * padding
    if size + pad_total < kernel:
        raise ShapeError(
            f"window of {kernel} does not fit input of {size} with padding {padding}"
        )
    return (size + pad_total - kernel) // stride + 1


def explicit_padding(
    size: int, kernel: int, stride: int, padding: int | str
) -> tuple[int, int]:
    """(low, high) zero padding realizing ``padding`` on one spatial axis."""
    if padding == "same":
        return _same_padding(size, kernel, stride)
    if padding == "valid":
        return (0, 0)
    if isinstance(padding, int):
        return (padding, padding)
    raise ShapeError(f"padding must be 'same', 'valid' or an int: {padding!r}")


@dataclass(frozen=True)
class Layer:
    """Base class; concrete layers override the hooks below."""

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    @property
    def arity(self) -> int:
        """Number of graph inputs the layer consumes."""
        return 1

    @property
    def is_major(self) -> bool:
        """Major layers anchor pipeline stages; minor layers fuse into them."""
        return False

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        raise NotImplementedError

    def macs(self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape) -> int:
        """Multiply-accumulates to produce one output tensor."""
        return 0

    def weight_params(self) -> int:
        return 0

    def bias_params(self, out_shape: TensorShape) -> int:
        return 0

    def elementwise_ops(
        self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape
    ) -> int:
        """Non-MAC arithmetic (bias adds, activations, comparisons)."""
        return 0

    def _expect_arity(self, in_shapes: tuple[TensorShape, ...]) -> None:
        if len(in_shapes) != self.arity:
            raise ShapeError(
                f"{self.kind} expects {self.arity} input(s), got {len(in_shapes)}"
            )


@dataclass(frozen=True)
class Input(Layer):
    """A network input with a fixed shape."""

    shape: TensorShape

    @property
    def arity(self) -> int:
        return 0

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        return self.shape


@dataclass(frozen=True)
class Conv2d(Layer):
    """2-D convolution, optionally with the paper's untied (per-pixel) bias."""

    in_channels: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int | str = "same"
    bias: BiasMode = BiasMode.UNTIED

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ShapeError(f"channel counts must be positive: {self}")
        if self.kernel <= 0 or self.stride <= 0:
            raise ShapeError(f"kernel and stride must be positive: {self}")

    @property
    def is_major(self) -> bool:
        return True

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        (shape,) = in_shapes
        if shape.channels != self.in_channels:
            raise ShapeError(
                f"conv expects {self.in_channels} input channels, got {shape}"
            )
        return TensorShape(
            channels=self.out_channels,
            height=conv_output_size(shape.height, self.kernel, self.stride, self.padding),
            width=conv_output_size(shape.width, self.kernel, self.stride, self.padding),
        )

    def macs(self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape) -> int:
        return (
            out_shape.numel * self.in_channels * self.kernel * self.kernel
        )

    def weight_params(self) -> int:
        return self.in_channels * self.out_channels * self.kernel * self.kernel

    def bias_params(self, out_shape: TensorShape) -> int:
        if self.bias is BiasMode.NONE:
            return 0
        if self.bias is BiasMode.TIED:
            return self.out_channels
        return out_shape.numel

    def elementwise_ops(
        self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape
    ) -> int:
        return 0 if self.bias is BiasMode.NONE else out_shape.numel


@dataclass(frozen=True)
class Activation(Layer):
    """Elementwise nonlinearity."""

    fn: str = "leaky_relu"
    negative_slope: float = 0.2

    _SUPPORTED = ("relu", "leaky_relu", "tanh", "sigmoid", "identity")

    def __post_init__(self) -> None:
        if self.fn not in self._SUPPORTED:
            raise ShapeError(
                f"unsupported activation {self.fn!r}; choose from {self._SUPPORTED}"
            )

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        return in_shapes[0]

    def elementwise_ops(
        self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape
    ) -> int:
        return out_shape.numel


@dataclass(frozen=True)
class Upsample(Layer):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    scale: int = 2
    mode: str = "nearest"

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ShapeError(f"scale must be >= 1: {self}")
        if self.mode != "nearest":
            raise ShapeError(f"only nearest upsampling is supported: {self.mode!r}")

    @property
    def is_major(self) -> bool:
        return True

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        (shape,) = in_shapes
        return TensorShape(
            channels=shape.channels,
            height=shape.height * self.scale,
            width=shape.width * self.scale,
        )


@dataclass(frozen=True)
class MaxPool(Layer):
    """Max pooling."""

    kernel: int = 2
    stride: int | None = None
    padding: int | str = "valid"

    def __post_init__(self) -> None:
        if self.kernel <= 0:
            raise ShapeError(f"kernel must be positive: {self}")
        if self.stride is not None and self.stride <= 0:
            raise ShapeError(f"stride must be positive: {self}")

    @property
    def effective_stride(self) -> int:
        return self.kernel if self.stride is None else self.stride

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        (shape,) = in_shapes
        stride = self.effective_stride
        return TensorShape(
            channels=shape.channels,
            height=conv_output_size(shape.height, self.kernel, stride, self.padding),
            width=conv_output_size(shape.width, self.kernel, stride, self.padding),
        )

    def elementwise_ops(
        self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape
    ) -> int:
        # One comparison per pooled element in every window position.
        return out_shape.numel * self.kernel * self.kernel


@dataclass(frozen=True)
class Linear(Layer):
    """Fully connected layer over a flattened vector input."""

    in_features: int
    out_features: int
    bias: BiasMode = BiasMode.TIED

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ShapeError(f"feature counts must be positive: {self}")

    @property
    def is_major(self) -> bool:
        return True

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        (shape,) = in_shapes
        if shape.numel != self.in_features:
            raise ShapeError(
                f"linear expects {self.in_features} features, got {shape} "
                f"({shape.numel} elements)"
            )
        return TensorShape(channels=self.out_features, height=1, width=1)

    def macs(self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape) -> int:
        return self.in_features * self.out_features

    def weight_params(self) -> int:
        return self.in_features * self.out_features

    def bias_params(self, out_shape: TensorShape) -> int:
        if self.bias is BiasMode.NONE:
            return 0
        return self.out_features

    def elementwise_ops(
        self, in_shapes: tuple[TensorShape, ...], out_shape: TensorShape
    ) -> int:
        return 0 if self.bias is BiasMode.NONE else self.out_features


@dataclass(frozen=True)
class Reshape(Layer):
    """Reinterpret a tensor as a new CHW shape with the same element count."""

    target: TensorShape

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        (shape,) = in_shapes
        if shape.numel != self.target.numel:
            raise ShapeError(
                f"cannot reshape {shape} ({shape.numel} elements) "
                f"to {self.target} ({self.target.numel} elements)"
            )
        return self.target


@dataclass(frozen=True)
class Flatten(Layer):
    """Flatten to a feature vector ``(C*H*W, 1, 1)``."""

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        (shape,) = in_shapes
        return TensorShape(channels=shape.numel, height=1, width=1)


@dataclass(frozen=True)
class Concat(Layer):
    """Concatenate along channels; spatial dims must agree."""

    num_inputs: int = 2

    def __post_init__(self) -> None:
        if self.num_inputs < 2:
            raise ShapeError(f"concat needs at least two inputs: {self}")

    @property
    def arity(self) -> int:
        return self.num_inputs

    def infer_shape(self, in_shapes: tuple[TensorShape, ...]) -> TensorShape:
        self._expect_arity(in_shapes)
        first = in_shapes[0]
        for shape in in_shapes[1:]:
            if (shape.height, shape.width) != (first.height, first.width):
                raise ShapeError(f"concat inputs disagree spatially: {in_shapes}")
        return TensorShape(
            channels=sum(shape.channels for shape in in_shapes),
            height=first.height,
            width=first.width,
        )
