"""The network graph: a DAG of named layer nodes.

A *branch* (the paper's ``Br.``) corresponds to one graph output; nodes on
which several outputs depend form the *shared part*. Branch decomposition
and shared-part reassignment live in :mod:`repro.construction.reorg`; this
module only provides the structural queries they need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.ir.layer import Input, Layer, ShapeError, TensorShape


class GraphError(ValueError):
    """Raised for structural problems: cycles, bad wiring, duplicate names."""


@dataclass(frozen=True)
class Node:
    """One layer instance in the graph."""

    name: str
    layer: Layer
    inputs: tuple[str, ...]


class NetworkGraph:
    """A directed acyclic graph of layers with named nodes.

    Nodes keep insertion order, which makes topological sorts and generated
    reports deterministic.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, name: str, layer: Layer, inputs: tuple[str, ...] | list[str] = ()) -> str:
        """Add a node and return its name."""
        if name in self._nodes:
            raise GraphError(f"duplicate node name {name!r}")
        inputs = tuple(inputs)
        for parent in inputs:
            if parent not in self._nodes:
                raise GraphError(f"node {name!r} references unknown input {parent!r}")
        if len(inputs) != layer.arity:
            raise GraphError(
                f"node {name!r} ({layer.kind}) expects {layer.arity} inputs, "
                f"got {len(inputs)}"
            )
        self._nodes[name] = Node(name=name, layer=layer, inputs=inputs)
        return name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def input_names(self) -> list[str]:
        """Names of :class:`~repro.ir.layer.Input` nodes, in insertion order."""
        return [n.name for n in self._nodes.values() if isinstance(n.layer, Input)]

    def output_names(self) -> list[str]:
        """Names of nodes without successors — one per branch."""
        consumed: set[str] = set()
        for node in self._nodes.values():
            consumed.update(node.inputs)
        return [name for name in self._nodes if name not in consumed]

    def successors(self) -> dict[str, list[str]]:
        """Adjacency map node -> consumers (insertion order)."""
        succ: dict[str, list[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for parent in node.inputs:
                succ[parent].append(node.name)
        return succ

    def topo_order(self) -> list[str]:
        """Kahn topological order, stable w.r.t. insertion order."""
        in_degree = {name: len(node.inputs) for name, node in self._nodes.items()}
        succ = self.successors()
        ready = deque(name for name, deg in in_degree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for child in succ[name]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    def ancestors(self, name: str) -> set[str]:
        """All nodes the given node transitively depends on (exclusive)."""
        seen: set[str] = set()
        frontier = list(self.node(name).inputs)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.node(current).inputs)
        return seen

    def branch_membership(self) -> dict[str, frozenset[int]]:
        """Map node -> indices of the output branches that depend on it.

        Branch indices follow :meth:`output_names` order (0-based). A node
        whose set has more than one element belongs to a shared part.
        """
        outputs = self.output_names()
        membership: dict[str, set[int]] = {name: set() for name in self._nodes}
        for branch_idx, output in enumerate(outputs):
            membership[output].add(branch_idx)
            for anc in self.ancestors(output):
                membership[anc].add(branch_idx)
        return {name: frozenset(mem) for name, mem in membership.items()}

    # ------------------------------------------------------------------
    # shape inference and validation
    # ------------------------------------------------------------------
    def infer_shapes(self) -> dict[str, TensorShape]:
        """Shapes of every node output, keyed by node name."""
        shapes: dict[str, TensorShape] = {}
        for name in self.topo_order():
            node = self._nodes[name]
            in_shapes = tuple(shapes[parent] for parent in node.inputs)
            try:
                shapes[name] = node.layer.infer_shape(in_shapes)
            except ShapeError as exc:
                raise ShapeError(f"at node {name!r}: {exc}") from exc
        return shapes

    def validate(self) -> None:
        """Check structure and shapes; raises GraphError/ShapeError."""
        if not self._nodes:
            raise GraphError(f"graph {self.name!r} is empty")
        if not self.input_names():
            raise GraphError(f"graph {self.name!r} has no Input nodes")
        dangling = [
            n.name
            for n in self._nodes.values()
            if isinstance(n.layer, Input) and n.name in self.output_names()
        ]
        if dangling:
            raise GraphError(f"inputs without consumers: {dangling}")
        self.topo_order()
        self.infer_shapes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkGraph(name={self.name!r}, nodes={len(self)}, "
            f"outputs={self.output_names()})"
        )
