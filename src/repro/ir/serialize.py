"""JSON (de)serialization of network graphs.

This is the on-disk exchange format of the framework: a decoder authored in
the torch-like frontend (or by hand) round-trips through
``graph_to_json`` / ``graph_from_json`` without loss.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.ir.graph import GraphError, NetworkGraph
from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Layer,
    Linear,
    MaxPool,
    Reshape,
    TensorShape,
    Upsample,
)

_LAYER_TYPES: dict[str, type[Layer]] = {
    cls.__name__: cls
    for cls in (
        Input,
        Conv2d,
        Activation,
        Upsample,
        MaxPool,
        Linear,
        Reshape,
        Flatten,
        Concat,
    )
}

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, TensorShape):
        return {"__shape__": value.as_tuple()}
    if isinstance(value, BiasMode):
        return value.value
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__shape__" in value:
        c, h, w = value["__shape__"]
        return TensorShape(channels=c, height=h, width=w)
    return value


def _layer_to_dict(layer: Layer) -> dict[str, Any]:
    payload = {
        f.name: _encode_value(getattr(layer, f.name))
        for f in dataclasses.fields(layer)
    }
    return {"type": type(layer).__name__, **payload}


def _layer_from_dict(data: dict[str, Any]) -> Layer:
    data = dict(data)
    type_name = data.pop("type", None)
    if type_name not in _LAYER_TYPES:
        raise GraphError(f"unknown layer type {type_name!r}")
    cls = _LAYER_TYPES[type_name]
    kwargs = {key: _decode_value(val) for key, val in data.items()}
    if "bias" in kwargs and isinstance(kwargs["bias"], str):
        kwargs["bias"] = BiasMode(kwargs["bias"])
    if "target" in kwargs and isinstance(kwargs["target"], (list, tuple)):
        c, h, w = kwargs["target"]
        kwargs["target"] = TensorShape(channels=c, height=h, width=w)
    return cls(**kwargs)


def graph_to_dict(graph: NetworkGraph) -> dict[str, Any]:
    """Serialize a graph to plain dicts/lists (JSON-compatible)."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "name": node.name,
                "inputs": list(node.inputs),
                "layer": _layer_to_dict(node.layer),
            }
            for node in graph.nodes()
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> NetworkGraph:
    """Reconstruct a graph serialized by :func:`graph_to_dict`."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise GraphError(f"unsupported graph format version {version}")
    graph = NetworkGraph(data.get("name", "network"))
    for entry in data["nodes"]:
        layer = _layer_from_dict(entry["layer"])
        graph.add(entry["name"], layer, tuple(entry["inputs"]))
    return graph


def graph_to_json(graph: NetworkGraph, indent: int | None = 2) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str) -> NetworkGraph:
    """Rebuild a graph from its JSON string form."""
    return graph_from_dict(json.loads(text))
