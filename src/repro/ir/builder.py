"""A fluent helper for assembling graphs.

The model zoo uses this builder so network definitions read like the
architecture tables in papers::

    b = GraphBuilder("decoder")
    x = b.input("z", TensorShape(4, 8, 8))
    x = b.conv(x, out_channels=128, kernel=4)
    x = b.act(x)
    x = b.upsample(x)
    ...
    graph = b.graph
"""

from __future__ import annotations

from collections import Counter

from repro.ir.graph import NetworkGraph
from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Linear,
    MaxPool,
    Reshape,
    TensorShape,
    Upsample,
)


class GraphBuilder:
    """Incrementally builds a :class:`NetworkGraph` with auto-named nodes."""

    def __init__(self, name: str = "network") -> None:
        self.graph = NetworkGraph(name)
        self._counters: Counter[str] = Counter()

    def _auto_name(self, prefix: str, name: str | None) -> str:
        if name is not None:
            return name
        self._counters[prefix] += 1
        return f"{prefix}{self._counters[prefix]}"

    # ------------------------------------------------------------------
    def input(self, name: str, shape: TensorShape) -> str:
        return self.graph.add(name, Input(shape=shape))

    def conv(
        self,
        x: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int | str = "same",
        bias: BiasMode = BiasMode.UNTIED,
        name: str | None = None,
    ) -> str:
        in_channels = self._channels_of(x)
        layer = Conv2d(
            in_channels=in_channels,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            bias=bias,
        )
        return self.graph.add(self._auto_name("conv", name), layer, (x,))

    def act(
        self,
        x: str,
        fn: str = "leaky_relu",
        negative_slope: float = 0.2,
        name: str | None = None,
    ) -> str:
        layer = Activation(fn=fn, negative_slope=negative_slope)
        return self.graph.add(self._auto_name("act", name), layer, (x,))

    def upsample(self, x: str, scale: int = 2, name: str | None = None) -> str:
        return self.graph.add(
            self._auto_name("up", name), Upsample(scale=scale), (x,)
        )

    def pool(
        self,
        x: str,
        kernel: int = 2,
        stride: int | None = None,
        padding: int | str = "valid",
        name: str | None = None,
    ) -> str:
        layer = MaxPool(kernel=kernel, stride=stride, padding=padding)
        return self.graph.add(self._auto_name("pool", name), layer, (x,))

    def linear(
        self,
        x: str,
        out_features: int,
        bias: BiasMode = BiasMode.TIED,
        name: str | None = None,
    ) -> str:
        shape = self._shape_of(x)
        layer = Linear(
            in_features=shape.numel, out_features=out_features, bias=bias
        )
        return self.graph.add(self._auto_name("fc", name), layer, (x,))

    def reshape(self, x: str, target: TensorShape, name: str | None = None) -> str:
        return self.graph.add(
            self._auto_name("reshape", name), Reshape(target=target), (x,)
        )

    def flatten(self, x: str, name: str | None = None) -> str:
        return self.graph.add(self._auto_name("flatten", name), Flatten(), (x,))

    def concat(self, xs: list[str], name: str | None = None) -> str:
        layer = Concat(num_inputs=len(xs))
        return self.graph.add(self._auto_name("concat", name), layer, tuple(xs))

    # ------------------------------------------------------------------
    def cau_block(
        self,
        x: str,
        out_channels: int,
        kernel: int = 4,
        bias: BiasMode = BiasMode.UNTIED,
        upsample: int = 2,
        negative_slope: float = 0.2,
    ) -> str:
        """The decoder's [C, A, U] block: conv, LeakyReLU, 2x upsample."""
        x = self.conv(x, out_channels=out_channels, kernel=kernel, bias=bias)
        x = self.act(x, fn="leaky_relu", negative_slope=negative_slope)
        return self.upsample(x, scale=upsample)

    # ------------------------------------------------------------------
    def _shape_of(self, name: str) -> TensorShape:
        return self.graph.infer_shapes()[name]

    def _channels_of(self, name: str) -> int:
        return self._shape_of(name).channels
