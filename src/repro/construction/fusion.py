"""Layer fusion (paper Fig. 4, Construction step).

Lightweight layers are aggregated into neighbouring *major* layers so each
pipeline stage is one Conv-like computation:

- **backward fusion** — activations and max-pools attach to the conv/linear
  that produces their input (the PE array applies the nonlinearity and
  pooling on the way out);
- **forward fusion** — nearest upsampling, reshape, flatten and concat
  attach to the conv/linear that consumes them. Folding a 2x upsample
  forward means the consumer reads each input row/column twice (an
  addressing transform), so no intermediate upsampled tensor is ever
  materialized — this is what keeps the 16x1024x1024 feature map of the
  decoder off the external memory.

After fusion the network is a set of :class:`FusedStage` objects wired by
``sources`` references; every [C,A,U] block of the decoder becomes exactly
one stage, matching the latency model of Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import NetworkGraph
from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Layer,
    Linear,
    MaxPool,
    Reshape,
    TensorShape,
    Upsample,
)


class FusionError(ValueError):
    """Raised when a graph cannot be decomposed into fused stages."""


_BACKWARD_MINOR = (Activation, MaxPool)
_FORWARD_MINOR = (Upsample, Reshape, Flatten, Concat)


def _is_anchor(layer: Layer) -> bool:
    return isinstance(layer, (Conv2d, Linear))


@dataclass(frozen=True)
class FusedStage:
    """One pipeline stage: a conv-like anchor plus its fused neighbours."""

    name: str
    kind: str  # "conv" or "linear"
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    conv_height: int  # compute grid of the anchor (pre-pool)
    conv_width: int
    out_height: int  # stage output (post-pool)
    out_width: int
    upsample_in: int  # folded input upsample factor (1 = none)
    macs: int
    weight_params: int
    bias_params: int
    untied_bias: bool
    activation: str | None
    input_elements: int  # elements actually read from producers
    external_input_elements: int  # subset arriving from graph inputs (DRAM)
    output_elements: int  # elements actually written downstream
    sources: tuple[str, ...]  # producer stage anchors or graph inputs
    nodes: tuple[str, ...]  # every graph node folded into this stage

    @property
    def ops(self) -> int:
        """Arithmetic ops (2 per MAC), the GOP numerator of Eq. 3."""
        return 2 * self.macs

    @property
    def params(self) -> int:
        return self.weight_params + self.bias_params

    @property
    def cpf_max(self) -> int:
        return self.in_channels

    @property
    def kpf_max(self) -> int:
        return self.out_channels

    @property
    def h_max(self) -> int:
        return self.conv_height

    @property
    def max_parallelism(self) -> int:
        """Upper bound of the 3-D parallelism (cpf x kpf x h)."""
        return self.cpf_max * self.kpf_max * self.h_max


def _walk_back(
    graph: NetworkGraph, name: str
) -> tuple[list[str], int, list[str]]:
    """Walk backward through forward-minor nodes from an anchor's input.

    Returns (source names, accumulated upsample factor, traversed nodes).
    Sources are anchor names or graph-input names.
    """
    sources: list[str] = []
    traversed: list[str] = []
    upsample = 1

    def visit(current: str, factor_slot: list[int]) -> None:
        node = graph.node(current)
        layer = node.layer
        if _is_anchor(layer) or isinstance(layer, Input):
            sources.append(current)
            return
        if isinstance(layer, _FORWARD_MINOR):
            traversed.append(current)
            if isinstance(layer, Upsample):
                factor_slot[0] *= layer.scale
            for parent in node.inputs:
                visit(parent, factor_slot)
            return
        if isinstance(layer, _BACKWARD_MINOR):
            # An activation/pool output is the *stage output* of the anchor
            # that produced it; resolve to that anchor.
            visit(node.inputs[0], factor_slot)
            return
        raise FusionError(f"cannot fuse through node {current!r} ({layer.kind})")

    slot = [1]
    visit(name, slot)
    upsample = slot[0]
    return sources, upsample, traversed


def _walk_forward(graph: NetworkGraph, anchor: str) -> tuple[list[str], str | None]:
    """Collect the chain of backward-minor nodes following an anchor.

    Returns (attached node names, terminal node name) where the terminal
    node produces the stage's output tensor.
    """
    succ = graph.successors()
    attached: list[str] = []
    current = anchor
    while True:
        children = succ[current]
        if len(children) != 1:
            break
        child = children[0]
        if not isinstance(graph.node(child).layer, _BACKWARD_MINOR):
            break
        attached.append(child)
        current = child
    return attached, current


def fuse_graph(graph: NetworkGraph) -> list[FusedStage]:
    """Decompose ``graph`` into fused pipeline stages (topological order)."""
    graph.validate()
    shapes = graph.infer_shapes()
    stages: list[FusedStage] = []

    for name in graph.topo_order():
        node = graph.node(name)
        layer = node.layer
        if not _is_anchor(layer):
            continue

        # Input side: fold upsample/reshape/flatten/concat, find producers.
        sources, upsample_in, folded_in = _walk_back(graph, node.inputs[0])
        input_elements = 0
        external_input_elements = 0
        for source in sources:
            source_node = graph.node(source)
            if _is_anchor(source_node.layer):
                # The producer stage's output is its terminal node's tensor.
                _, terminal = _walk_forward(graph, source)
                input_elements += shapes[terminal].numel
            else:
                input_elements += shapes[source].numel
                external_input_elements += shapes[source].numel

        # Output side: fold activation / pooling.
        attached_out, terminal = _walk_forward(graph, name)
        out_shape: TensorShape = shapes[terminal]
        conv_shape: TensorShape = shapes[name]
        activation = None
        for child in attached_out:
            child_layer = graph.node(child).layer
            if isinstance(child_layer, Activation):
                activation = child_layer.fn

        if isinstance(layer, Conv2d):
            kind = "conv"
            in_channels = layer.in_channels
            out_channels = layer.out_channels
            kernel = layer.kernel
            stride = layer.stride
            untied = layer.bias is BiasMode.UNTIED
        else:
            assert isinstance(layer, Linear)
            kind = "linear"
            in_channels = layer.in_features
            out_channels = layer.out_features
            kernel = 1
            stride = 1
            untied = False

        in_shapes = tuple(shapes[p] for p in node.inputs)
        stages.append(
            FusedStage(
                name=name,
                kind=kind,
                in_channels=in_channels,
                out_channels=out_channels,
                kernel=kernel,
                stride=stride,
                conv_height=conv_shape.height,
                conv_width=conv_shape.width,
                out_height=out_shape.height,
                out_width=out_shape.width,
                upsample_in=upsample_in,
                macs=layer.macs(in_shapes, conv_shape),
                weight_params=layer.weight_params(),
                bias_params=layer.bias_params(conv_shape),
                untied_bias=untied,
                activation=activation,
                input_elements=input_elements,
                external_input_elements=external_input_elements,
                output_elements=out_shape.numel,
                sources=tuple(sources),
                nodes=tuple([name, *folded_in, *attached_out]),
            )
        )

    if not stages:
        raise FusionError(f"graph {graph.name!r} has no conv/linear stages")
    return stages
