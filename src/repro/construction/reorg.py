"""Branch separation and layer reorganization (paper Fig. 4, Construction).

Branches with shared parts are separated into individual dataflows and the
shared stages are assigned to the flow with the highest computation demand
— for the targeted decoder that is Br. 2, exactly as in the paper ("layers
from this part will be assigned to Br. 2 as it is more critical"). This
avoids hardware redundancy (no duplicated units) and creates a clear
critical flow for the Optimization step.

The result is a :class:`PipelinePlan`: one ordered stage pipeline per
branch, plus the fork bookkeeping (which stage's output feeds which other
branch's head).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.construction.fusion import FusedStage, FusionError, fuse_graph
from repro.ir.graph import NetworkGraph


@dataclass(frozen=True)
class PlannedStage:
    """A fused stage placed at (branch, index) in the elastic architecture."""

    stage: FusedStage
    branch: int
    index: int
    shared: bool  # originally common to several branches

    @property
    def name(self) -> str:
        return self.stage.name


@dataclass(frozen=True)
class BranchPipeline:
    """The ordered pipeline of one branch."""

    index: int
    output_name: str
    stages: tuple[PlannedStage, ...]

    @property
    def ops(self) -> int:
        return sum(s.stage.ops for s in self.stages)

    @property
    def macs(self) -> int:
        return sum(s.stage.macs for s in self.stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)


@dataclass(frozen=True)
class PipelinePlan:
    """All branch pipelines of a network, ready for architecture search."""

    graph_name: str
    branches: tuple[BranchPipeline, ...]

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    def all_stages(self) -> list[PlannedStage]:
        return [s for b in self.branches for s in b.stages]

    def stage_by_name(self, name: str) -> PlannedStage:
        for planned in self.all_stages():
            if planned.name == name:
                return planned
        raise KeyError(f"no stage named {name!r}")

    def consumers(self, name: str) -> list[PlannedStage]:
        """Stages that read the named stage's output (incl. cross-branch)."""
        return [
            planned
            for planned in self.all_stages()
            if name in planned.stage.sources
        ]

    @property
    def total_ops(self) -> int:
        return sum(b.ops for b in self.branches)


def build_pipeline_plan(graph: NetworkGraph) -> PipelinePlan:
    """Fuse ``graph`` and organize its stages into branch pipelines."""
    stages = fuse_graph(graph)
    by_name = {stage.name: stage for stage in stages}
    membership = graph.branch_membership()
    outputs = graph.output_names()

    # Inclusive compute demand per branch decides where shared stages go.
    branch_ops = [0] * len(outputs)
    for stage in stages:
        for branch_idx in membership[stage.name]:
            branch_ops[branch_idx] += stage.ops

    assignment: dict[str, int] = {}
    shared_flags: dict[str, bool] = {}
    for stage in stages:
        owners = membership[stage.name]
        if not owners:
            raise FusionError(
                f"stage {stage.name!r} does not reach any output"
            )
        # Highest-demand branch wins; ties break toward the lower index.
        best = max(sorted(owners), key=lambda idx: branch_ops[idx])
        assignment[stage.name] = best
        shared_flags[stage.name] = len(owners) > 1

    pipelines: list[BranchPipeline] = []
    for branch_idx, output in enumerate(outputs):
        names = [s.name for s in stages if assignment[s.name] == branch_idx]
        planned = tuple(
            PlannedStage(
                stage=by_name[name],
                branch=branch_idx,
                index=position,
                shared=shared_flags[name],
            )
            for position, name in enumerate(names)
        )
        if not planned:
            raise FusionError(
                f"branch {branch_idx} ({output!r}) received no stages; "
                "its work was fully absorbed by a higher-demand branch"
            )
        pipelines.append(
            BranchPipeline(
                index=branch_idx, output_name=output, stages=planned
            )
        )

    return PipelinePlan(graph_name=graph.name, branches=tuple(pipelines))
