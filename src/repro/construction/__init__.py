"""The paper's Construction step: fusion, reorganization, instantiation."""

from repro.construction.fusion import FusedStage, FusionError, fuse_graph
from repro.construction.reorg import (
    BranchPipeline,
    PipelinePlan,
    PlannedStage,
    build_pipeline_plan,
)

__all__ = [
    "BranchPipeline",
    "FusedStage",
    "FusionError",
    "PipelinePlan",
    "PlannedStage",
    "build_pipeline_plan",
    "fuse_graph",
]
