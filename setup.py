"""Setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
``pip install -e .`` falls back to the legacy (non-PEP-517) editable path,
which needs this file. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
