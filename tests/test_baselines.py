"""Tests for the baseline accelerator models (paper Sec. III, Table II)."""

from __future__ import annotations

import pytest

from repro.baselines.dnnbuilder import DnnBuilderModel
from repro.baselines.hybriddnn import HybridDnnModel
from repro.baselines.soc import SNAPDRAGON_865, SocModel, SocSpec
from repro.devices.fpga import get_device
from repro.quant.schemes import INT8, INT16

SCHEMES = ("Z7045", "ZU17EG", "ZU9CG")


@pytest.fixture(scope="module")
def dnnbuilder_designs(mimic_plan):
    model = DnnBuilderModel()
    return [
        model.design(mimic_plan, get_device(d).budget(), INT8, target=d)
        for d in SCHEMES
    ]


@pytest.fixture(scope="module")
def hybriddnn_designs(mimic_plan):
    model = HybridDnnModel()
    return [
        model.design(mimic_plan, get_device(d).budget(), INT16, target=d)
        for d in SCHEMES
    ]


class TestDnnBuilder:
    def test_fps_flat_across_schemes(self, dnnbuilder_designs):
        """Table II's headline: more FPGA, same FPS."""
        fps = [d.fps for d in dnnbuilder_designs]
        assert fps[0] == pytest.approx(fps[1], rel=0.01)
        assert fps[1] == pytest.approx(fps[2], rel=0.01)

    def test_efficiency_collapses_with_size(self, dnnbuilder_designs):
        eff = [d.efficiency for d in dnnbuilder_designs]
        assert eff[0] > eff[1] > eff[2]
        assert eff[0] > 2 * eff[2]

    def test_bottleneck_is_a_thin_hd_layer(self, dnnbuilder_designs):
        design = dnnbuilder_designs[2]
        bottleneck = max(
            design.layer_latency_ms, key=design.layer_latency_ms.get
        )
        assert bottleneck == "texture"  # 16 -> 3 channels at 1024^2

    def test_capped_layer_latency_constant(self, dnnbuilder_designs):
        lat = [d.layer_latency_ms["texture"] for d in dnnbuilder_designs]
        assert lat[0] == pytest.approx(lat[2])

    def test_uncapped_layer_improves(self, dnnbuilder_designs):
        lat = [d.layer_latency_ms["conv9"] for d in dnnbuilder_designs]
        assert lat[2] < lat[0]

    def test_budget_respected(self, dnnbuilder_designs):
        for design, name in zip(dnnbuilder_designs, SCHEMES):
            device = get_device(name)
            assert design.dsp <= device.dsp
            assert design.bram <= device.bram_18k

    def test_works_on_raw_graph(self, mimic_graph):
        design = DnnBuilderModel().design(
            mimic_graph, get_device("Z7045").budget(), INT8
        )
        assert design.fps > 0


class TestHybridDnn:
    def test_engine_is_power_of_two(self, hybriddnn_designs):
        for design in hybriddnn_designs:
            parallelism = int(design.notes.split("P=")[1].split()[0])
            assert parallelism & (parallelism - 1) == 0

    def test_scheme2_and_3_identical(self, hybriddnn_designs):
        """The BRAM wall: ZU9CG gets the same accelerator as ZU17EG."""
        s2, s3 = hybriddnn_designs[1], hybriddnn_designs[2]
        assert s2.dsp == s3.dsp == 1024
        assert s2.bram == s3.bram
        assert s2.fps == pytest.approx(s3.fps)

    def test_scheme1_smaller(self, hybriddnn_designs):
        assert hybriddnn_designs[0].dsp == 512

    def test_fps_matches_paper_band(self, hybriddnn_designs):
        # Paper: 12.1 / 22.0 / 22.0 FPS.
        assert hybriddnn_designs[0].fps == pytest.approx(12.1, rel=0.15)
        assert hybriddnn_designs[1].fps == pytest.approx(22.0, rel=0.15)

    def test_efficiency_in_70s(self, hybriddnn_designs):
        for design in hybriddnn_designs:
            assert 0.6 < design.efficiency < 0.85

    def test_folded_engine_slower_than_sum_of_parts(self, hybriddnn_designs):
        # Folded execution: latency is the sum over layers.
        design = hybriddnn_designs[0]
        assert design.latency_ms == pytest.approx(
            sum(design.layer_latency_ms.values()), rel=0.01
        )


class TestSoc:
    def test_matches_paper_fps_band(self, mimic_graph):
        design = SocModel().design(mimic_graph, INT8)
        assert design.fps == pytest.approx(35.8, rel=0.15)

    def test_matches_paper_efficiency_band(self, mimic_graph):
        design = SocModel().design(mimic_graph, INT8)
        assert design.efficiency == pytest.approx(0.169, abs=0.03)

    def test_cache_bound_layers_dominate(self, mimic_graph):
        design = SocModel().design(mimic_graph, INT8)
        slowest = max(
            design.layer_latency_ms, key=design.layer_latency_ms.get
        )
        # One of the HD texture-branch layers must dominate.
        assert design.layer_latency_ms[slowest] > 1.0

    def test_bigger_cache_helps(self, mimic_graph):
        big_cache = SocSpec(
            name="big-cache",
            multipliers=SNAPDRAGON_865.multipliers,
            frequency_mhz=SNAPDRAGON_865.frequency_mhz,
            cache_bytes=1 << 30,
            effective_ddr_gbps=SNAPDRAGON_865.effective_ddr_gbps,
        )
        base = SocModel().design(mimic_graph, INT8)
        improved = SocModel(big_cache).design(mimic_graph, INT8)
        assert improved.fps > 2 * base.fps

    def test_peak_gops_accounting(self):
        assert SNAPDRAGON_865.peak_gops(INT8) == pytest.approx(
            4 * 496 * 1.45, rel=0.01
        )

    def test_latency_property(self, mimic_graph):
        design = SocModel().design(mimic_graph, INT8)
        assert design.latency_ms == pytest.approx(1000.0 / design.fps)
