"""Edge-case tests across modules (failure paths and boundary behaviour)."""

from __future__ import annotations

import pytest

from repro.baselines.base import BaselineDesign
from repro.experiments.fig3 import run_fig3
from repro.experiments.table4 import Table4Result
from repro.ir.layer import Layer, TensorShape
from repro.perf.estimator import evaluate
from repro.quant.schemes import INT8
from repro.sim.runner import _steady_state_fps


class TestLayerBaseDefaults:
    def test_base_layer_defaults(self):
        layer = Layer()
        shape = TensorShape(1, 2, 2)
        assert layer.kind == "layer"
        assert layer.arity == 1
        assert not layer.is_major
        assert layer.macs((shape,), shape) == 0
        assert layer.weight_params() == 0
        assert layer.bias_params(shape) == 0
        assert layer.elementwise_ops((shape,), shape) == 0
        with pytest.raises(NotImplementedError):
            layer.infer_shape((shape,))


class TestBaselineDesign:
    def test_latency_inf_when_zero_fps(self):
        design = BaselineDesign(
            name="x", target="t", quant_name="int8",
            fps=0.0, efficiency=0.0, dsp=0, bram=0,
        )
        assert design.latency_ms == float("inf")

    def test_latency_reciprocal(self):
        design = BaselineDesign(
            name="x", target="t", quant_name="int8",
            fps=50.0, efficiency=0.5, dsp=1, bram=1,
        )
        assert design.latency_ms == pytest.approx(20.0)


class TestSteadyStateFps:
    def test_too_few_frames(self):
        assert _steady_state_fps([100.0], 200.0, warmup=0) == 0.0
        assert _steady_state_fps([], 200.0, warmup=0) == 0.0

    def test_warmup_clamped(self):
        # warmup larger than the series still leaves a 2-frame window.
        fps = _steady_state_fps([0.0, 100.0, 200.0], 200.0, warmup=10)
        assert fps > 0

    def test_exact_rate(self):
        times = [1e6 * k for k in range(1, 6)]
        fps = _steady_state_fps(times, 200.0, warmup=1)
        assert fps == pytest.approx(200.0)

    def test_zero_span_guard(self):
        assert _steady_state_fps([5.0, 5.0], 200.0, warmup=0) == 0.0


class TestOverallEfficiency:
    def test_dsp_weighted_average(self, decoder_plan):
        from repro.arch.config import AcceleratorConfig

        perf = evaluate(
            decoder_plan, AcceleratorConfig.uniform(decoder_plan), INT8, 200.0
        )
        weighted = sum(b.efficiency * b.dsp for b in perf.branches) / sum(
            b.dsp for b in perf.branches
        )
        assert perf.overall_efficiency == pytest.approx(weighted)

    def test_zero_dsp_accelerator(self):
        from repro.perf.estimator import AcceleratorPerf

        empty = AcceleratorPerf(branches=(), frequency_mhz=200.0, quant_name="int8")
        assert empty.overall_efficiency == 0.0
        assert empty.fps == 0.0


class TestExperimentAccessors:
    def test_table4_unknown_case(self):
        result = Table4Result(cases=())
        with pytest.raises(KeyError):
            result.case(7)

    def test_fig3_latencies_positive(self):
        result = run_fig3()
        for scheme in result.latencies.values():
            for value in scheme.values():
                assert value > 0
