"""The public API surface stays importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet_runs(self):
        """The README / module docstring quickstart must stay valid."""
        from repro import Customization, FCad, build_codec_avatar_decoder, get_device

        result = FCad(
            network=build_codec_avatar_decoder(),
            device=get_device("Z7045"),
            quant="int8",
            customization=Customization(
                batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
            ),
        ).run(iterations=2, population=10, seed=0)
        assert "F-CAD" in result.render()

    @pytest.mark.parametrize(
        "module",
        [
            "repro.ir",
            "repro.frontend",
            "repro.profiler",
            "repro.models",
            "repro.runtime",
            "repro.quant",
            "repro.arch",
            "repro.analysis",
            "repro.construction",
            "repro.perf",
            "repro.dse",
            "repro.baselines",
            "repro.sim",
            "repro.devices",
            "repro.fcad",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.ir",
            "repro.dse",
            "repro.perf",
            "repro.sim",
            "repro.baselines",
            "repro.devices",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"
