"""Tests for the Analysis step (Fig. 4, Step 1)."""

from __future__ import annotations

import pytest

from repro.analysis.analyzer import analyze_network
from tests.conftest import make_chain, make_tiny_decoder


class TestAnalyzer:
    def test_decoder_branch_structure(self, decoder_graph):
        analysis = analyze_network(decoder_graph)
        assert analysis.num_branches == 3
        texture = analysis.branch_info[1]
        assert texture.output_name == "texture"
        assert texture.has_shared_part
        assert texture.num_shared_layers > 0

    def test_geometry_branch_not_shared(self, decoder_graph):
        analysis = analyze_network(decoder_graph)
        geometry = analysis.branch_info[0]
        assert not geometry.has_shared_part

    def test_inputs_per_branch(self, decoder_graph):
        analysis = analyze_network(decoder_graph)
        assert analysis.branch_info[0].depends_on_inputs == ("z",)
        assert set(analysis.branch_info[1].depends_on_inputs) == {"z", "view"}

    def test_totals_forwarded(self, decoder_graph):
        analysis = analyze_network(decoder_graph)
        assert analysis.total_gop == pytest.approx(13.6, rel=0.05)
        assert analysis.total_params > 9e6

    def test_single_branch_chain(self):
        analysis = analyze_network(make_chain(depth=2))
        assert analysis.num_branches == 1
        assert not analysis.branch_info[0].has_shared_part

    def test_render_mentions_branches_and_layers(self):
        text = analyze_network(make_tiny_decoder()).render()
        assert "branches" in text
        assert "Br.1" in text
        assert "Layer profile" in text
