"""Tests for the Pareto explorer, config serialization, and design report."""

from __future__ import annotations

import json

import pytest

from repro.arch.config import AcceleratorConfig, ConfigError
from repro.arch.serialize import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
)
from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.pareto import ParetoFrontier, explore_budget_frontier
from repro.fcad.flow import FCad
from repro.fcad.report import render_markdown_report
from repro.quant.schemes import INT8
from tests.conftest import make_tiny_decoder


@pytest.fixture(scope="module")
def frontier():
    plan = build_pipeline_plan(make_tiny_decoder())
    return explore_budget_frontier(
        plan,
        get_device("Z7045").budget(),
        INT8,
        fractions=(0.3, 0.6, 1.0),
        iterations=3,
        population=15,
        seed=0,
    )


class TestPareto:
    def test_one_point_per_fraction(self, frontier):
        assert len(frontier.points) == 3
        assert [p.fraction for p in frontier.points] == [0.3, 0.6, 1.0]

    def test_fps_non_decreasing_with_budget(self, frontier):
        fps = [p.fps for p in sorted(frontier.points, key=lambda p: p.fraction)]
        assert all(b >= a * 0.999 for a, b in zip(fps, fps[1:]))

    def test_frontier_is_non_dominated(self, frontier):
        chosen = frontier.frontier()
        for earlier, later in zip(chosen, chosen[1:]):
            assert later.dsp >= earlier.dsp
            assert later.fps > earlier.fps

    def test_budgets_respected(self, frontier):
        for point in frontier.points:
            assert point.dsp <= point.budget.compute
            assert point.perf.total_bram <= point.budget.memory

    def test_smallest_meeting_target(self, frontier):
        best_fps = max(p.fps for p in frontier.points)
        cheapest = frontier.smallest_meeting(best_fps * 0.5)
        assert cheapest is not None
        assert cheapest.fps >= best_fps * 0.5
        assert frontier.smallest_meeting(best_fps * 100) is None

    def test_render(self, frontier):
        text = frontier.render(fps_target=1.0)
        assert "Pareto" in text
        assert "cheapest design" in text

    def test_empty_frontier_handling(self):
        assert ParetoFrontier(points=()).frontier() == []


class TestConfigSerialization:
    def test_roundtrip(self, decoder_plan):
        config = AcceleratorConfig.uniform(decoder_plan, batch_size=2)
        rebuilt = config_from_json(config_to_json(config))
        assert rebuilt == config

    def test_json_is_plain(self, tiny_plan):
        config = AcceleratorConfig.uniform(tiny_plan)
        payload = json.loads(config_to_json(config))
        assert payload["version"] == 1
        assert len(payload["branches"]) == tiny_plan.num_branches

    def test_dict_roundtrip_preserves_factors(self, tiny_plan):
        from repro.arch.config import BranchConfig, StageConfig

        config = AcceleratorConfig(
            branches=(
                BranchConfig(
                    batch_size=2,
                    stages=tuple(
                        StageConfig(cpf=2, kpf=4, h=8)
                        for _ in tiny_plan.branches[0].stages
                    ),
                ),
                BranchConfig(batch_size=1, stages=(StageConfig(cpf=8),)),
            )
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.stage(0, 0).h == 8
        assert rebuilt.stage(1, 0).cpf == 8

    def test_bad_version_rejected(self):
        with pytest.raises(ConfigError, match="version"):
            config_from_dict({"version": 9, "branches": []})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            config_from_dict({"version": 1, "branches": [{"stages": []}]})


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def result(self):
        return FCad(
            network=make_tiny_decoder(),
            device=get_device("Z7045"),
            quant="int8",
        ).run(iterations=3, population=15, seed=0)

    def test_report_sections(self, result):
        text = render_markdown_report(result)
        for heading in (
            "# F-CAD design report",
            "## Network",
            "## Optimized accelerator",
            "## Unit configurations",
            "## DSE fitness trace",
        ):
            assert heading in text

    def test_report_contains_every_stage(self, result):
        text = render_markdown_report(result)
        for planned in result.plan.all_stages():
            assert planned.name in text

    def test_report_mentions_vr_verdict(self, result):
        text = render_markdown_report(result)
        assert "90 FPS VR target" in text

    def test_report_is_markdown_table_shaped(self, result):
        text = render_markdown_report(result)
        table_lines = [ln for ln in text.splitlines() if ln.startswith("|")]
        assert len(table_lines) > 10
