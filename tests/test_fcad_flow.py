"""Tests for the top-level F-CAD flow."""

from __future__ import annotations

import pytest

from repro.devices.asic import AsicSpec
from repro.devices.budget import ResourceBudget
from repro.devices.fpga import get_device
from repro.dse.space import Customization
from repro.fcad.flow import FCad
from repro.quant.schemes import INT8
from tests.conftest import make_tiny_decoder


@pytest.fixture(scope="module")
def small_result():
    flow = FCad(
        network=make_tiny_decoder(),
        device=get_device("Z7045"),
        quant="int8",
    )
    return flow.run(iterations=3, population=15, seed=0)


class TestFlow:
    def test_produces_all_artifacts(self, small_result):
        assert small_result.profile.total_macs > 0
        assert small_result.plan.num_branches == 2
        assert small_result.dse.best_perf.fps > 0
        assert small_result.fps == small_result.dse.best_perf.fps
        assert 0 < small_result.efficiency <= 1.0

    def test_render_contains_all_sections(self, small_result):
        text = small_result.render()
        assert "Branch profile" in text
        assert "F-CAD generated accelerator" in text
        assert "budget:" in text

    def test_accelerator_instantiation(self, small_result):
        acc = small_result.accelerator()
        assert acc.num_branches == 2
        assert len(acc.units()) == sum(
            b.num_stages for b in small_result.plan.branches
        )

    def test_quant_accepts_string_or_scheme(self):
        graph = make_tiny_decoder()
        by_name = FCad(network=graph, device=get_device("Z7045"), quant="int8")
        by_scheme = FCad(network=graph, device=get_device("Z7045"), quant=INT8)
        assert by_name.quant is by_scheme.quant

    def test_device_xor_budget_required(self):
        graph = make_tiny_decoder()
        with pytest.raises(ValueError, match="exactly one"):
            FCad(network=graph)
        with pytest.raises(ValueError, match="exactly one"):
            FCad(
                network=graph,
                device=get_device("Z7045"),
                budget=ResourceBudget(1, 1, 1.0),
            )

    def test_explicit_budget_target(self):
        result = FCad(
            network=make_tiny_decoder(),
            budget=ResourceBudget(compute=256, memory=256, bandwidth_gbps=6.0),
            quant="int8",
        ).run(iterations=2, population=10, seed=0)
        assert result.dse.best_perf.total_dsp <= 256

    def test_asic_target(self):
        """Sec. VII: F-CAD can also target ASIC budgets."""
        spec = AsicSpec(
            name="hmd-npu",
            mac_units=512,
            onchip_buffer_kb=2048,
            bandwidth_gbps=8.0,
        )
        result = FCad(
            network=make_tiny_decoder(), device=spec, quant="int8"
        ).run(iterations=2, population=10, seed=0)
        assert result.frequency_mhz == spec.default_frequency_mhz
        assert result.dse.best_perf.fps > 0

    def test_custom_customization_respected(self):
        result = FCad(
            network=make_tiny_decoder(),
            device=get_device("ZU17EG"),
            quant="int8",
            customization=Customization(batch_sizes=(1, 2), priorities=(1.0, 1.0)),
        ).run(iterations=3, population=15, seed=0)
        batches = [b.batch_size for b in result.dse.best_config.branches]
        assert batches == [1, 2]

    def test_seed_reproducibility(self):
        graph = make_tiny_decoder()

        def run(seed):
            return FCad(
                network=graph, device=get_device("Z7045"), quant="int8"
            ).run(iterations=2, population=10, seed=seed)

        assert run(5).dse.best_config == run(5).dse.best_config
