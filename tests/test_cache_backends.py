"""Conformance suite for the evaluation-cache backends, plus bit-identity.

Every backend implements the same tiny mapping protocol, so one shared
test suite runs against all of them; backend-specific guarantees
(persistence, delta tracking, proxy pickling) get their own classes. The
final class asserts the property everything rests on: serial, parallel,
and file-backed warm-started searches return the same DseResult.
"""

from __future__ import annotations

import pickle

import pytest

from repro.devices.fpga import get_device
from repro.dse.cache import (
    CACHE_BACKENDS,
    DeltaEvalCache,
    FileEvalCache,
    LocalEvalCache,
    SharedEvalCache,
    make_cache,
    put_entries,
)
from repro.dse.engine import DseEngine
from repro.dse.space import Customization
from repro.quant.schemes import INT8
from tests.conftest import make_tiny_decoder

#: One Manager cache for the whole module — forking a manager process per
#: test triples the suite's wall time for no extra coverage.
@pytest.fixture(scope="module")
def manager_cache():
    with SharedEvalCache() as cache:
        yield cache


@pytest.fixture
def backend(request, tmp_path, manager_cache):
    """Yield a fresh cache of the requested flavour."""
    if request.param == "local":
        yield LocalEvalCache()
    elif request.param == "delta":
        yield DeltaEvalCache(LocalEvalCache())
    elif request.param == "file":
        with FileEvalCache(tmp_path / "cache.sqlite") as cache:
            yield cache
    elif request.param == "manager":
        yield manager_cache
    else:  # pragma: no cover
        raise ValueError(request.param)


ALL_BACKENDS = ["local", "delta", "file", "manager"]


@pytest.mark.parametrize("backend", ALL_BACKENDS, indirect=True)
class TestConformance:
    """The contract every backend must honour identically."""

    def test_missing_key_is_none(self, backend):
        assert backend.get(("missing", 0, (1, 2, 3))) is None

    def test_roundtrip(self, backend):
        key = ("digest", 1, (10, 20, 30))
        backend.put(key, "solution")
        assert backend.get(key) == "solution"

    def test_overwrite_is_last_writer(self, backend):
        backend.put("k", "first")
        backend.put("k", "second")
        assert backend.get("k") == "second"

    def test_items_contains_put_entries(self, backend):
        backend.put(("a", 0, (0, 0, 0)), 1)
        backend.put(("b", 1, (1, 1, 1)), 2)
        entries = dict(backend.items())
        assert entries[("a", 0, (0, 0, 0))] == 1
        assert entries[("b", 1, (1, 1, 1))] == 2

    def test_len_counts_entries(self, backend):
        before = len(backend)
        backend.put(("len", 0, (9, 9, 9)), "x")
        assert len(backend) == before + 1

    def test_tuple_keys_and_rich_values(self, backend):
        """The real key/value shapes: nested tuples and dataclasses."""
        key = ("sha1" * 10, 2, (17, 3, 250))
        value = {"configs": ((1, 2, 3), (4, 5, 6)), "fps": 71.5}
        backend.put(key, value)
        assert backend.get(key) == value

    def test_put_many_equals_put_loop(self, backend):
        """Bulk insert is observationally identical to a put() loop."""
        entries = [
            (("bulk", i, (i, i, i)), f"solution-{i}") for i in range(5)
        ]
        put_entries(backend, entries)
        for key, value in entries:
            assert backend.get(key) == value

    def test_put_many_overwrites_like_put(self, backend):
        key = ("bulk-overwrite", 0, (0, 0, 0))
        backend.put(key, "old")
        put_entries(backend, [(key, "new")])
        assert backend.get(key) == "new"


class TestMakeCache:
    def test_backend_names(self, tmp_path):
        assert isinstance(make_cache("local"), LocalEvalCache)
        cache = make_cache("file", tmp_path / "c.sqlite")
        try:
            assert isinstance(cache, FileEvalCache)
        finally:
            cache.close()
        assert set(CACHE_BACKENDS) == {"local", "file", "manager"}

    def test_file_needs_path(self):
        with pytest.raises(ValueError, match="path"):
            make_cache("file")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            make_cache("redis")


class TestDeltaCache:
    def test_reads_fall_through_to_base(self):
        base = LocalEvalCache()
        base.put("warm", 1)
        delta = DeltaEvalCache(base)
        assert delta.get("warm") == 1
        assert delta.new_entries() == []

    def test_new_entries_is_exactly_the_delta(self):
        base = LocalEvalCache()
        base.put("warm", 1)
        delta = DeltaEvalCache(base)
        delta.put("new", 2)
        assert delta.new_entries() == [("new", 2)]
        assert base.get("new") is None  # not merged yet

    def test_merge_folds_into_base_and_resets(self):
        base = LocalEvalCache()
        delta = DeltaEvalCache(base)
        delta.put("a", 1)
        delta.put("b", 2)
        assert delta.merge() == 2
        assert base.get("a") == 1 and base.get("b") == 2
        assert delta.new_entries() == []

    def test_items_unions_without_duplicates(self):
        base = LocalEvalCache()
        base.put("k", "base")
        delta = DeltaEvalCache(base)
        delta.put("k", "delta")
        delta.put("only", 1)
        entries = dict(delta.items())
        assert entries == {"k": "delta", "only": 1}
        assert len(delta) == 2

    def test_put_many_lands_in_the_delta(self):
        """Bulk inserts must ship home with the chunk like put() does."""
        base = LocalEvalCache()
        delta = DeltaEvalCache(base)
        put_entries(delta, [("a", 1), ("b", 2)])
        assert sorted(delta.new_entries()) == [("a", 1), ("b", 2)]
        assert base.get("a") is None  # not merged yet


class TestFileCache:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "persist.sqlite"
        with FileEvalCache(path) as cache:
            cache.put(("digest", 0, (1, 2, 3)), {"fps": 30.0})
        with FileEvalCache(path) as warm:
            assert warm.get(("digest", 0, (1, 2, 3))) == {"fps": 30.0}
            assert len(warm) == 1

    def test_flush_appends_only_new_entries(self, tmp_path):
        path = tmp_path / "flush.sqlite"
        with FileEvalCache(path) as cache:
            cache.put("a", 1)
            assert cache.pending_writes == 1
            assert cache.flush() == 1
            assert cache.pending_writes == 0
            cache.put("b", 2)
            assert cache.flush() == 1
            assert cache.flush() == 0

    def test_overwrite_persists_across_reopen(self, tmp_path):
        """Last writer wins on disk too, not just in memory."""
        path = tmp_path / "overwrite.sqlite"
        with FileEvalCache(path) as cache:
            cache.put("k", "first")
            cache.flush()  # "first" already on disk
            cache.put("k", "second")
        with FileEvalCache(path) as warm:
            assert warm.get("k") == "second"

    def test_merging_two_runs_accumulates(self, tmp_path):
        path = tmp_path / "merge.sqlite"
        with FileEvalCache(path) as first:
            first.put("run1", 1)
        with FileEvalCache(path) as second:
            second.put("run2", 2)
        with FileEvalCache(path) as third:
            assert third.get("run1") == 1
            assert third.get("run2") == 2


class TestManagerFallback:
    def test_roundtrip_and_pickle(self, manager_cache):
        manager_cache.put("pickled", (1, 2))
        clone = pickle.loads(pickle.dumps(manager_cache))
        # The clone reconnects to the same manager-backed store.
        assert clone.get("pickled") == (1, 2)
        clone.put("from-clone", 3)
        assert manager_cache.get("from-clone") == 3

    def test_preload(self, manager_cache):
        local = LocalEvalCache()
        local.put("preloaded", "v")
        manager_cache.preload(local.items())
        assert manager_cache.get("preloaded") == "v"

    def test_drain_new_returns_only_fresh_entries(self, manager_cache):
        manager_cache.drain_new()  # reset whatever earlier tests wrote
        manager_cache.put("fresh-1", 1)
        manager_cache.put("fresh-2", 2)
        drained = dict(manager_cache.drain_new())
        assert drained == {"fresh-1": 1, "fresh-2": 2}
        # A second drain without new puts moves nothing.
        assert manager_cache.drain_new() == []


class TestBitIdentity:
    """Serial, parallel, and warm-started searches agree bit for bit."""

    @pytest.fixture(scope="class")
    def engine(self):
        from repro.construction.reorg import build_pipeline_plan

        plan = build_pipeline_plan(make_tiny_decoder())
        return DseEngine(
            plan=plan,
            budget=get_device("Z7045").budget(),
            customization=Customization.uniform(plan.num_branches),
            quant=INT8,
        )

    def test_serial_parallel_and_file_warm_agree(self, engine, tmp_path):
        size = dict(iterations=2, population=10, seed=13)
        serial = engine.search(**size)
        parallel = engine.search(**size, workers=2)

        path = tmp_path / "warm.sqlite"
        with FileEvalCache(path) as cold_cache:
            cold = engine.search(**size, cache=cold_cache)
        with FileEvalCache(path) as warm_cache:
            preloaded = len(warm_cache)
            warm = engine.search(**size, cache=warm_cache)

        for result in (parallel, cold, warm):
            assert result.best_fitness == serial.best_fitness
            assert result.best_config == serial.best_config
            assert result.history == serial.history
            assert (
                result.convergence_iteration == serial.convergence_iteration
            )
        # The warm start really was warm: every bucket came from the file.
        assert preloaded > 0
        assert warm.evaluations == 0
        assert warm.cache_hits == warm.cache_lookups
