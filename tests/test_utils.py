"""Tests for repro.utils: units, tables, rng."""

from __future__ import annotations

import random

import pytest

from repro.utils.rng import make_rng
from repro.utils.tables import render_table
from repro.utils.units import (
    BRAM18K_BITS,
    bits_to_bram18k,
    format_count,
    format_engineering,
    gop,
)


class TestUnits:
    def test_gop_counts_two_ops_per_mac(self):
        assert gop(1e9) == pytest.approx(2.0)

    def test_gop_includes_extra_ops(self):
        assert gop(0, extra_ops=5e8) == pytest.approx(0.5)

    def test_bram_blocks_round_up(self):
        assert bits_to_bram18k(1) == 1
        assert bits_to_bram18k(BRAM18K_BITS) == 1
        assert bits_to_bram18k(BRAM18K_BITS + 1) == 2

    def test_bram_blocks_zero_for_empty(self):
        assert bits_to_bram18k(0) == 0
        assert bits_to_bram18k(-5) == 0

    def test_format_engineering_giga(self):
        assert format_engineering(13.6e9) == "13.6G"

    def test_format_engineering_small(self):
        assert format_engineering(42.0) == "42.0"

    def test_format_count_mega(self):
        assert format_count(7_200_000) == "7.2M"

    def test_format_count_kilo(self):
        assert format_count(2048) == "2.0k"


class TestTables:
    def test_renders_headers_and_rows(self):
        text = render_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "3" in lines[-1]

    def test_title_is_included(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_floats_formatted_to_one_decimal(self):
        text = render_table(["x"], [[1.2345]])
        assert "1.2" in text
        assert "1.2345" not in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [[1]])

    def test_columns_align(self):
        text = render_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = [line for line in text.splitlines() if "|" in line]
        pipes = [line.index("|") for line in lines]
        assert len(set(pipes)) == 1
        assert len(lines) == 3  # header + two rows (rule uses '+')


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(7), make_rng(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_existing_rng(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng

    def test_none_seed_builds_rng(self):
        assert isinstance(make_rng(None), random.Random)
