"""Hypothesis property suites over randomly generated networks.

These tie the whole stack together: for arbitrary (valid) multi-branch
networks, structural invariants must hold across the profiler, fusion,
serialization, the runtime, the analytical models, and the simulator.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import AcceleratorConfig, BranchConfig
from repro.construction.fusion import fuse_graph
from repro.construction.reorg import build_pipeline_plan
from repro.dse.space import get_pf
from repro.ir.builder import GraphBuilder
from repro.ir.layer import BiasMode, TensorShape
from repro.ir.serialize import graph_from_json, graph_to_json
from repro.perf.analytical import stage_latency_cycles
from repro.perf.estimator import evaluate
from repro.profiler.network import profile_network
from repro.quant.schemes import INT8
from repro.runtime.executor import Executor
from repro.sim.runner import simulate
from repro.sim.stage import ROW_OVERHEAD_CYCLES


@st.composite
def random_network(draw):
    """A random valid network: a trunk with optional second branch.

    Sizes are kept small so property tests stay fast; the *structures*
    (channel counts, kernel/stride mixes, fork points, pool/upsample
    placement) vary freely.
    """
    b = GraphBuilder("random")
    channels = draw(st.sampled_from([1, 2, 3, 5, 8]))
    size = draw(st.sampled_from([8, 12, 16]))
    x = b.input("x", TensorShape(channels, size, size))

    trunk_depth = draw(st.integers(1, 3))
    for _ in range(trunk_depth):
        kind = draw(st.sampled_from(["conv", "conv_pool", "cau"]))
        out_ch = draw(st.sampled_from([2, 4, 6, 8]))
        kernel = draw(st.sampled_from([1, 2, 3, 4]))
        bias = draw(st.sampled_from(list(BiasMode)))
        if kind == "cau":
            x = b.cau_block(x, out_channels=out_ch, kernel=kernel, bias=bias)
        else:
            x = b.conv(x, out_channels=out_ch, kernel=kernel, bias=bias)
            x = b.act(x, fn=draw(st.sampled_from(["relu", "leaky_relu", "tanh"])))
            if kind == "conv_pool":
                x = b.pool(x, kernel=2, stride=2)

    # Terminal conv for branch one.
    b.conv(x, out_channels=draw(st.sampled_from([1, 2, 3])), kernel=3, name="out_a")
    if draw(st.booleans()):
        b.conv(x, out_channels=2, kernel=draw(st.sampled_from([1, 3])), name="out_b")

    graph = b.graph
    graph.validate()
    return graph


@st.composite
def network_with_config(draw):
    graph = draw(random_network())
    plan = build_pipeline_plan(graph)
    branches = []
    for pipeline in plan.branches:
        stages = []
        for planned in pipeline.stages:
            stage = planned.stage
            target = draw(st.sampled_from([1, 2, 4, 8, 10**6]))
            stages.append(get_pf(stage, target))
        branches.append(
            BranchConfig(
                batch_size=draw(st.integers(1, 2)), stages=tuple(stages)
            )
        )
    return graph, plan, AcceleratorConfig(branches=tuple(branches))


class TestStructuralProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_network())
    def test_fusion_conserves_macs_and_params(self, graph):
        profile = profile_network(graph)
        stages = fuse_graph(graph)
        assert sum(s.macs for s in stages) == profile.total_macs
        assert sum(s.params for s in stages) == profile.total_params

    @settings(max_examples=40, deadline=None)
    @given(random_network())
    def test_reorg_partitions_stages(self, graph):
        plan = build_pipeline_plan(graph)
        names = [s.name for s in plan.all_stages()]
        assert len(names) == len(set(names))
        assert sum(b.ops for b in plan.branches) == sum(
            s.stage.ops for s in plan.all_stages()
        )

    @settings(max_examples=40, deadline=None)
    @given(random_network())
    def test_serialization_roundtrip(self, graph):
        rebuilt = graph_from_json(graph_to_json(graph))
        assert rebuilt.node_names() == graph.node_names()
        assert rebuilt.infer_shapes() == graph.infer_shapes()
        for node in graph.nodes():
            assert rebuilt.node(node.name).layer == node.layer

    @settings(max_examples=25, deadline=None)
    @given(random_network(), st.integers(0, 2**32 - 1))
    def test_runtime_shapes_agree_with_ir(self, graph, seed):
        executor = Executor(graph, seed=seed % 1000)
        in_shape = graph.infer_shapes()["x"]
        rng = np.random.default_rng(seed % 1000)
        values = executor.run({"x": rng.normal(size=in_shape.as_tuple())})
        for name, shape in graph.infer_shapes().items():
            assert values[name].shape == shape.as_tuple()


class TestModelProperties:
    @settings(max_examples=30, deadline=None)
    @given(network_with_config())
    def test_estimator_invariants(self, setup):
        graph, plan, config = setup
        perf = evaluate(plan, config, INT8, 200.0)
        assert perf.fps >= 0
        assert perf.total_dsp >= len(plan.all_stages())  # >= 1 DSP per unit
        for branch in perf.branches:
            assert 0 <= branch.efficiency <= 1.0 + 1e-9
            assert branch.bram > 0

    @settings(max_examples=30, deadline=None)
    @given(network_with_config())
    def test_latency_lower_bound(self, setup):
        """pf parallel MACs can at best divide the MAC count by pf."""
        graph, plan, config = setup
        for pipeline, branch_cfg in zip(plan.branches, config.branches):
            for planned, cfg in zip(pipeline.stages, branch_cfg.stages):
                lat = stage_latency_cycles(planned.stage, cfg)
                assert lat >= planned.stage.macs // cfg.pf
                assert lat <= planned.stage.macs  # never slower than serial

    @settings(max_examples=12, deadline=None)
    @given(network_with_config())
    def test_sim_bounded_by_analytical(self, setup):
        """Steady-state simulation can never beat Eq. 5, and stays within
        the per-row overhead bound of it when compute-bound."""
        graph, plan, config = setup
        analytical = evaluate(plan, config, INT8, 200.0)
        report = simulate(
            plan, config, INT8,
            bandwidth_gbps=25.6, frequency_mhz=200.0, frames=6, warmup=2,
        )
        for pipeline, branch_cfg, ana, meas in zip(
            plan.branches, config.branches, analytical.branches,
            report.branch_fps,
        ):
            assert meas <= ana.fps * 1.001
            # Overhead bound: the beat grows by at most ROW_OVERHEAD per
            # row-step (plus cross-branch coupling, hence one-sided).
            stage = max(
                (p.stage for p in pipeline.stages),
                key=lambda s: stage_latency_cycles(
                    s, branch_cfg.stages[0]
                ),
            )
            del stage  # coupling makes a tight bound branch-specific


def test_row_overhead_constant_is_small():
    """The simulator's per-row overhead stays a second-order effect."""
    assert 0 < ROW_OVERHEAD_CYCLES <= 64
