"""Cluster serving: groups, routers, admission control, transports."""

from __future__ import annotations

import pytest

from repro.devices.fpga import get_device
from repro.fcad.flow import FCad
from repro.serving import (
    AdmissionControl,
    Cluster,
    GroupSpec,
    ReplicaGroup,
    ReplicaPool,
    canned_workload,
    get_router,
    get_transport,
    replay_workload,
    report_from_json,
    report_to_json,
    serve_cluster,
    serve_from_results,
    serve_workload,
)
from repro.sim.runner import FrameLatencyProfile
from tests.conftest import make_tiny_decoder

#: The low-latency design: quick cold start, 250 FPS warm.
FAST = FrameLatencyProfile(
    finish_ms=(8.0, 12.0, 16.0),
    first_frame_ms=8.0,
    steady_interval_ms=4.0,
    frequency_mhz=200.0,
)

#: The big-batch design: triple the cold fill, the same steady rate.
BIG = FrameLatencyProfile(
    finish_ms=(24.0, 28.0, 32.0),
    first_frame_ms=24.0,
    steady_interval_ms=4.0,
    frequency_mhz=200.0,
)


def mixed_groups(transport: str = "inprocess") -> list[GroupSpec]:
    return [
        GroupSpec(
            "latency", FAST, replicas=1, policy="edf",
            batch_window_ms=0.0, max_batch=4, transport=transport,
        ),
        GroupSpec(
            "throughput", BIG, replicas=2, policy="fifo",
            batch_window_ms=4.0, max_batch=8, transport=transport,
        ),
    ]


def tiered_workload(**overrides):
    defaults = dict(
        avatars=9,
        frames_per_avatar=12,
        deadline_tiers=(20.0, 60.0, 60.0),
        jitter_ms=4.0,
        seed=0,
    )
    defaults.update(overrides)
    return canned_workload(**defaults)


class TestSpecsAndValidation:
    def test_group_spec_rejects_bad_values(self):
        with pytest.raises(ValueError, match="name"):
            GroupSpec("", FAST)
        with pytest.raises(ValueError, match="replica"):
            GroupSpec("g", FAST, replicas=0)

    def test_cluster_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            Cluster([GroupSpec("g", FAST), GroupSpec("g", BIG)])

    def test_cluster_needs_groups(self):
        with pytest.raises(ValueError, match="at least one"):
            Cluster([])

    def test_unknown_router_rejected(self):
        with pytest.raises(KeyError, match="known routers"):
            get_router("random")

    def test_unknown_transport_rejected(self):
        with pytest.raises(KeyError, match="known transports"):
            get_transport("carrier-pigeon")

    def test_admission_validation(self):
        with pytest.raises(ValueError):
            AdmissionControl(max_queue_per_replica=0)
        with pytest.raises(ValueError):
            AdmissionControl(slack=0.0)

    def test_replica_budget(self):
        cluster = Cluster(mixed_groups())
        assert cluster.replicas == 3
        assert len(cluster) == 2


class TestRouters:
    def groups(self):
        return [ReplicaGroup(spec) for spec in mixed_groups()]

    def test_round_robin_cycles(self):
        router = get_router("round-robin")
        groups = self.groups()
        picks = [router.route(50.0, 0.0, groups) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_least_loaded_prefers_lower_index_on_ties(self):
        router = get_router("least-loaded")
        groups = self.groups()
        # No scheduler started: both backlogs are zero.
        assert router.route(50.0, 0.0, groups) == 0

    def test_deadline_router_is_static_tiering(self):
        router = get_router("deadline")
        groups = self.groups()
        # Lax budget: both tiers feasible unloaded -> highest capacity
        # (throughput, 2 replicas x 250 FPS).
        assert router.route(60.0, 0.0, groups) == 1
        # Tight budget: only the latency tier's unloaded latency
        # (0 ms window + 8 ms fill) fits.
        assert router.route(20.0, 0.0, groups) == 0
        # Impossible budget: fall back to the quickest tier.
        assert router.route(5.0, 0.0, groups) == 0

    def test_unloaded_latency_is_window_plus_fill(self):
        latency, throughput = self.groups()
        assert latency.unloaded_latency_ms() == pytest.approx(8.0)
        assert throughput.unloaded_latency_ms() == pytest.approx(28.0)


class TestClusterSessions:
    def test_single_group_cluster_matches_scheduler_path(self):
        # The refactor's identity guarantee: one in-process group, no
        # admission control == the plain BatchScheduler path, SLO for
        # SLO, on the virtual clock.
        workload = tiered_workload()
        pool = ReplicaPool(FAST, replicas=2, max_batch=8)
        direct = serve_workload(
            pool, workload, policy="edf", batch_window_ms=2.0
        )
        clustered = serve_cluster(
            [
                GroupSpec(
                    "only", FAST, replicas=2, policy="edf",
                    batch_window_ms=2.0, max_batch=8,
                )
            ],
            workload,
        )
        for field in (
            "policy", "submitted", "completed", "duration_ms",
            "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
            "latency_mean_ms", "latency_max_ms", "queue_mean_ms",
            "deadline_misses", "batches", "mean_batch_size",
            "replica_utilization", "per_avatar_p99_ms",
        ):
            assert getattr(clustered, field) == getattr(direct, field), field
        assert clustered.router == "round-robin"
        assert len(clustered.groups) == 1
        assert clustered.shed == 0

    def test_mixed_cluster_routes_by_deadline(self):
        report = serve_cluster(
            mixed_groups(), tiered_workload(), router="deadline"
        )
        assert report.completed == report.submitted
        groups = {group.name: group for group in report.groups}
        # Tight-tier frames (20 ms) land on the latency group, lax ones
        # (60 ms) on the big-batch group: 3 of 9 avatars are tight.
        assert groups["latency"].completed == 3 * 12
        assert groups["throughput"].completed == 6 * 12
        assert report.policy == "cluster(deadline)"

    def test_cluster_deterministic_and_json_roundtrips(self):
        def run():
            return serve_cluster(
                mixed_groups(),
                tiered_workload(),
                router="deadline",
                admission=True,
            )

        first, second = run(), run()
        assert report_to_json(first) == report_to_json(second)
        clone = report_from_json(report_to_json(first))
        assert clone == first
        assert clone.groups == first.groups
        payload = report_to_json(first)
        assert '"shed_rate"' in payload and '"groups"' in payload

    def test_admission_sheds_on_overload(self):
        # One 250-FPS replica against 16 avatars x 30 FPS (~1.9x): the
        # bounded queue + predicted-miss controller must shed, count the
        # shed requests in submitted, and keep accepted p99 inside the
        # deadline budget.
        workload = tiered_workload(
            avatars=16, deadline_tiers=(), deadline_ms=40.0
        )
        shielded = serve_cluster(
            [GroupSpec("only", FAST, replicas=1, max_batch=8)],
            workload,
            admission=AdmissionControl(),
        )
        assert shielded.shed > 0
        assert shielded.completed + shielded.shed == shielded.submitted
        assert shielded.shed_rate == pytest.approx(
            shielded.shed / shielded.submitted
        )
        assert shielded.latency_p99_ms <= 40.0
        assert shielded.groups[0].shed == shielded.shed

    def test_bounded_queue_without_prediction(self):
        workload = tiered_workload(avatars=16, deadline_tiers=())
        report = serve_cluster(
            [GroupSpec("only", FAST, replicas=1, max_batch=8)],
            workload,
            admission=AdmissionControl(
                max_queue_per_replica=4, predict_miss=False
            ),
        )
        assert report.shed > 0
        # The queue bound holds the backlog near 4 frames, so accepted
        # latencies stay within a few service times.
        assert report.latency_p99_ms < 60.0

    def test_shed_responses_resolve_to_none(self):
        # Avatar clients must see a dropped frame, not a hang: every
        # client gather() completes even when most frames are shed.
        report = serve_cluster(
            [GroupSpec("only", FAST, replicas=1, max_batch=2)],
            tiered_workload(avatars=16),
            admission=AdmissionControl(max_queue_per_replica=1),
        )
        assert report.submitted == 16 * 12
        assert report.completed < report.submitted


class TestReplayWorkloadClusters:
    def test_companions_score_candidate_in_mixed_cluster(self):
        companion = GroupSpec(
            "companion", BIG, replicas=2, policy="fifo", batch_window_ms=4.0
        )
        report = replay_workload(
            FAST,
            workload=tiered_workload(),
            replicas=1,
            companions=[companion],
            router="deadline",
        )
        names = [group.name for group in report.groups]
        assert names == ["candidate", "companion"]
        assert report.completed == report.submitted

    def test_admission_alone_routes_through_the_cluster_path(self):
        # A shedding single-group replay must actually shed (the plain
        # pool path silently dropping admission= was a bug).
        report = replay_workload(
            FAST,
            workload=tiered_workload(avatars=16, deadline_tiers=()),
            replicas=1,
            admission=True,
        )
        assert report.shed > 0
        assert report.completed + report.shed == report.submitted

    def test_serving_oracle_key_folds_cluster_membership(self):
        from repro.dse.objective import ServingOracle

        solo = ServingOracle()
        companion = GroupSpec("companion", BIG, replicas=2)
        clustered = ServingOracle(
            companions=(companion,), router="deadline", shed=True
        )
        assert solo.key != clustered.key
        assert "companion" in clustered.key
        assert "shed=True" in clustered.key
        # shed without companions still changes the replay -> the key.
        assert ServingOracle(shed=True).key != solo.key

    def test_slo_objective_penalizes_shedding(self):
        from repro.dse.objective import BranchMetrics, SloObjective

        served = BranchMetrics(
            fps=(100.0,), meets_batch=(True,), oracle="serving",
            p99_ms=20.0, deadline_miss_rate=0.1, shed_rate=None,
        )
        shedding = BranchMetrics(
            fps=(100.0,), meets_batch=(True,), oracle="serving",
            p99_ms=20.0, deadline_miss_rate=0.0, shed_rate=0.1,
        )
        objective = SloObjective()
        # A shed frame costs exactly as much as a missed one: dropping
        # the traffic must not look like serving it.
        assert objective.score(shedding, (1.0,)) == pytest.approx(
            objective.score(served, (1.0,))
        )


class TestSocketTransport:
    def test_socket_pool_matches_inprocess(self):
        workload = tiered_workload(avatars=4, frames_per_avatar=6)
        inproc = serve_workload(
            ReplicaPool(FAST, replicas=2, max_batch=8), workload, policy="edf"
        )
        socketed = serve_workload(
            ReplicaPool(FAST, replicas=2, max_batch=8),
            workload,
            policy="edf",
            transport="socket",
        )
        # The server computes the same arithmetic on exactly round-
        # tripped floats, so the whole report matches bit for bit.
        assert report_to_json(socketed) == report_to_json(inproc)

    def test_socket_group_in_cluster(self):
        groups = [
            GroupSpec(
                "latency", FAST, replicas=1, policy="edf",
                batch_window_ms=0.0, max_batch=4, transport="socket",
            ),
            GroupSpec("throughput", BIG, replicas=2, policy="fifo"),
        ]
        report = serve_cluster(
            groups, tiered_workload(avatars=6, frames_per_avatar=6),
            router="deadline",
        )
        assert report.completed == report.submitted == 36
        by_name = {group.name: group for group in report.groups}
        assert by_name["latency"].transport == "socket"
        assert by_name["throughput"].transport == "inprocess"


class TestServeFromResults:
    @pytest.fixture(scope="class")
    def tiny_results(self):
        def explore(batch):
            from repro.dse.space import Customization

            return FCad(
                network=make_tiny_decoder(),
                device=get_device("Z7045"),
                quant="int8",
                customization=Customization(
                    batch_sizes=(batch, batch), priorities=(1.0, 1.0)
                ),
            ).run(iterations=2, population=8, seed=0)

        return explore(1), explore(2)

    def test_serving_group_from_result(self, tiny_results):
        latency, _throughput = tiny_results
        spec = latency.serving_group(
            name="lat", replicas=2, policy="edf", sim_frames=4
        )
        assert spec.name == "lat"
        assert spec.replicas == 2
        assert spec.profile.steady_interval_ms > 0

    def test_serve_from_results_mixed_cluster(self, tiny_results):
        latency, throughput = tiny_results
        report = serve_from_results(
            [(latency, 1), (throughput, 2)],
            avatars=4,
            frames_per_avatar=5,
            deadline_tiers=(25.0, 100.0),
            router="deadline",
            admission=True,
            sim_frames=4,
        )
        assert len(report.groups) == 2
        assert report.router == "deadline"
        assert report.submitted == 20
        assert report.completed + report.shed == report.submitted
