"""Tests for the cycle-accurate simulator."""

from __future__ import annotations

import pytest

from repro.arch.config import AcceleratorConfig, BranchConfig, StageConfig
from repro.construction.reorg import build_pipeline_plan
from repro.devices.budget import ResourceBudget
from repro.dse.inbranch import optimize_branch
from repro.perf.analytical import stage_latency_cycles
from repro.perf.estimator import evaluate
from repro.quant.schemes import INT8
from repro.sim.dram import DramChannel
from repro.sim.pipeline import PipelineSimulator
from repro.sim.runner import simulate
from repro.sim.stage import ROW_OVERHEAD_CYCLES
from tests.conftest import make_chain, make_tiny_decoder


def chain_setup(depth=3, channels=8, size=16):
    graph = make_chain(depth=depth, channels=channels, size=size)
    plan = build_pipeline_plan(graph)
    config = AcceleratorConfig.uniform(plan)
    return plan, config


class TestDramChannel:
    def test_bytes_per_cycle(self):
        dram = DramChannel(bandwidth_gbps=12.8, frequency_mhz=200.0, efficiency=1.0)
        assert dram.bytes_per_cycle == pytest.approx(64.0)

    def test_flow_serialization(self):
        dram = DramChannel(bandwidth_gbps=12.8, frequency_mhz=200.0, efficiency=1.0)
        dram.register_flows({"a": 100.0, "b": 100.0})
        # Each flow owns half the channel: 32 B/cycle.
        t1 = dram.request("a", 64.0, 0.0)
        assert t1 == pytest.approx(2.0)
        t2 = dram.request("a", 64.0, 0.0)  # queued behind t1 on flow a
        assert t2 == pytest.approx(4.0)
        t3 = dram.request("b", 64.0, 0.0)  # independent flow
        assert t3 == pytest.approx(2.0)

    def test_zero_bytes_immediate(self):
        dram = DramChannel(bandwidth_gbps=12.8, frequency_mhz=200.0)
        assert dram.request("x", 0.0, 5.0) == 5.0

    def test_accounting(self):
        dram = DramChannel(bandwidth_gbps=12.8, frequency_mhz=200.0, efficiency=1.0)
        dram.register_flows({"a": 1.0})
        dram.request("a", 640.0, 0.0)
        assert dram.bytes_moved == 640.0
        assert dram.busy_cycles == pytest.approx(10.0)
        assert dram.requests == 1


class TestSingleStage:
    def test_steady_state_matches_eq4_plus_overhead(self):
        plan, config = chain_setup(depth=1)
        stage = plan.branches[0].stages[0].stage
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=10, warmup=2)
        expected_cycles = stage_latency_cycles(
            stage, StageConfig()
        ) + ROW_OVERHEAD_CYCLES * stage.conv_height
        expected_fps = 200e6 / expected_cycles
        assert report.fps == pytest.approx(expected_fps, rel=0.02)

    def test_sim_never_beats_analytical(self):
        plan, config = chain_setup(depth=1)
        analytical = evaluate(plan, config, INT8, 200.0)
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=10, warmup=2)
        assert report.fps <= analytical.fps * 1.001


class TestPipelines:
    def test_chain_throughput_set_by_bottleneck(self):
        plan, config = chain_setup(depth=4)
        analytical = evaluate(plan, config, INT8, 200.0)
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=12, warmup=3)
        assert report.fps == pytest.approx(analytical.fps, rel=0.05)

    def test_all_frames_complete(self):
        plan, config = chain_setup(depth=3)
        simulator = PipelineSimulator(plan, config, INT8, 12.8, 200.0)
        stats = simulator.run(frames=5)
        for stage_stats in stats.stages.values():
            assert stage_stats.frames_done == 5

    def test_end_to_end_slower_than_steady(self):
        plan, config = chain_setup(depth=4)
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=8, warmup=2)
        assert report.end_to_end_fps < report.fps

    def test_more_frames_amortize_fill(self):
        plan, config = chain_setup(depth=4)
        short = simulate(plan, config, INT8, 12.8, 200.0, frames=4, warmup=1)
        long = simulate(plan, config, INT8, 12.8, 200.0, frames=24, warmup=4)
        assert long.end_to_end_fps > short.end_to_end_fps

    def test_h_partition_speeds_up_sim(self):
        plan, _ = chain_setup(depth=2, channels=4, size=32)
        slow_cfg = AcceleratorConfig.uniform(plan)
        stages = tuple(
            StageConfig(cpf=1, kpf=1, h=4) for _ in plan.branches[0].stages
        )
        fast_cfg = AcceleratorConfig(
            branches=(BranchConfig(batch_size=1, stages=stages),)
        )
        slow = simulate(plan, slow_cfg, INT8, 12.8, 200.0, frames=6, warmup=2)
        fast = simulate(plan, fast_cfg, INT8, 12.8, 200.0, frames=6, warmup=2)
        assert fast.fps > 2 * slow.fps


class TestMultiBranch:
    def test_decoder_like_network_completes(self):
        plan = build_pipeline_plan(make_tiny_decoder())
        config = AcceleratorConfig.uniform(plan)
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=6, warmup=2)
        assert all(f > 0 for f in report.branch_fps)

    def test_fork_couples_branches(self):
        """The warp branch cannot outrun the shared front that feeds it."""
        plan = build_pipeline_plan(make_tiny_decoder())
        config = AcceleratorConfig.uniform(plan)
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=8, warmup=2)
        big_fps, small_fps = report.branch_fps
        # The small branch alone would be much faster than the big one; the
        # shared producer caps it at the front-end's rate.
        assert small_fps <= big_fps * 1.05

    def test_replicas_scale_reported_fps(self):
        plan = build_pipeline_plan(make_tiny_decoder())
        base = AcceleratorConfig.uniform(plan)
        batched = AcceleratorConfig(
            branches=(
                base.branches[0],
                BranchConfig(batch_size=2, stages=base.branches[1].stages),
            )
        )
        one = simulate(plan, base, INT8, 12.8, 200.0, frames=6, warmup=2)
        two = simulate(plan, batched, INT8, 12.8, 200.0, frames=6, warmup=2)
        assert two.branch_fps[1] == pytest.approx(2 * one.branch_fps[1], rel=0.01)

    def test_real_decoder_optimized_config(self, decoder_plan):
        """DSE-optimized decoder config simulates without deadlock and
        lands near the analytical estimate on the compute-bound branches."""
        budget = ResourceBudget(compute=800, memory=900, bandwidth_gbps=12.8)
        configs = []
        for branch, batch in zip(decoder_plan.branches, (1, 1, 1)):
            sol = optimize_branch(
                branch, budget.scaled(0.33), batch, INT8
            )
            configs.append(sol.config)
        config = AcceleratorConfig(branches=tuple(configs))
        analytical = evaluate(decoder_plan, config, INT8, 200.0)
        report = simulate(plan=decoder_plan, config=config, quant=INT8,
                          bandwidth_gbps=12.8, frequency_mhz=200.0,
                          frames=6, warmup=2)
        # Branch 0 (geometry) is independent: steady state matches Eq. 5.
        assert report.branch_fps[0] == pytest.approx(
            analytical.branches[0].fps, rel=0.05
        )

    def test_efficiency_fields(self):
        plan, config = chain_setup(depth=3)
        report = simulate(plan, config, INT8, 12.8, 200.0, frames=8, warmup=2)
        assert 0 < report.efficiency <= 1.0
        assert 0 < report.steady_efficiency <= 1.0
        assert report.efficiency <= report.steady_efficiency * 1.001

    def test_stats_accounting(self):
        plan, config = chain_setup(depth=2)
        simulator = PipelineSimulator(plan, config, INT8, 12.8, 200.0)
        stats = simulator.run(frames=3)
        assert stats.total_cycles > 0
        for st in stats.stages.values():
            assert st.busy_cycles > 0
            assert st.steps_done == 3 * 16  # H=16 rows, h=1

    def test_invalid_frame_count(self):
        plan, config = chain_setup(depth=1)
        simulator = PipelineSimulator(plan, config, INT8, 12.8, 200.0)
        with pytest.raises(ValueError):
            simulator.run(frames=0)
