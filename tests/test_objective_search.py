"""Staged-search integration: bit-identity pins, objective-independent
caching, and the expensive re-rank track (sim / serving oracles)."""

from __future__ import annotations

import pytest

from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.cache import FileEvalCache, LocalEvalCache
from repro.dse.engine import DseEngine
from repro.dse.objective import (
    PaperObjective,
    ServingOracle,
    SimOracle,
    SloObjective,
)
from repro.dse.space import Customization
from repro.quant.schemes import INT8
from repro.sim.runner import frame_latency_profile
from repro.serving.workload import replay_workload
from tests.conftest import make_tiny_decoder


@pytest.fixture(scope="module")
def tiny_plan():
    return build_pipeline_plan(make_tiny_decoder())


def make_engine(plan, **kwargs):
    return DseEngine(
        plan=plan,
        budget=get_device("Z7045").budget(),
        customization=Customization.uniform(plan.num_branches),
        quant=INT8,
        **kwargs,
    )


#: A small canned workload so the serving oracle stays test-sized.
TINY_ORACLE = ServingOracle(
    avatars=8, frames_per_avatar=8, replicas=1, sim_frames=3
)


class TestPaperBitIdentity:
    """objective="paper" + no re-rank must reproduce the historical search."""

    #: Pinned from the pre-objective-layer main at the same seed/config
    #: (Z7045, tiny decoder, uniform customization, INT8, 3 x 12, seed 7).
    PINNED_BEST_FITNESS = 2777777.777777778

    def test_pinned_serial_result(self, tiny_plan):
        result = make_engine(tiny_plan).search(
            iterations=3, population=12, seed=7
        )
        assert result.best_fitness == self.PINNED_BEST_FITNESS
        assert result.objective == "paper(alpha=0.05)"

    def test_pinned_parallel_result(self, tiny_plan):
        result = make_engine(tiny_plan).search(
            iterations=3, population=12, seed=7, workers=2
        )
        assert result.best_fitness == self.PINNED_BEST_FITNESS

    def test_explicit_paper_objective_matches_default(self, tiny_plan):
        default = make_engine(tiny_plan).search(
            iterations=2, population=8, seed=3
        )
        explicit = make_engine(tiny_plan).search(
            iterations=2, population=8, seed=3, objective=PaperObjective()
        )
        by_name = make_engine(tiny_plan, objective="paper").search(
            iterations=2, population=8, seed=3
        )
        assert default.best_fitness == explicit.best_fitness
        assert default.best_fitness == by_name.best_fitness
        assert default.history == explicit.history == by_name.history
        assert default.best_config == explicit.best_config == by_name.best_config

    def test_analytical_oracle_stats_reported(self, tiny_plan):
        result = make_engine(tiny_plan).search(
            iterations=2, population=8, seed=0
        )
        assert len(result.oracle_stats) == 1
        stats = result.oracle_stats[0]
        assert stats.name == "analytical"
        assert stats.invocations == result.evaluations
        assert stats.cache_hits == result.cache_hits
        assert result.best_metrics is not None
        assert result.best_metrics.oracle == "analytical"
        assert result.best_metrics.p99_ms is None


class TestObjectiveIndependentCache:
    """Cache entries are metrics, not scores: switching objectives keeps hits."""

    def test_warm_file_cache_zero_solves_after_objective_switch(
        self, tiny_plan, tmp_path
    ):
        path = str(tmp_path / "eval.sqlite")
        with FileEvalCache(path) as cache:
            first = make_engine(tiny_plan).search(
                iterations=2, population=10, seed=0, cache=cache
            )
            assert first.evaluations > 0
        with FileEvalCache(path) as warm:
            assert len(warm) > 0
            slo = make_engine(tiny_plan).search(
                iterations=2, population=10, seed=0, cache=warm,
                objective="slo",
            )
            composite = make_engine(tiny_plan).search(
                iterations=2, population=10, seed=0, cache=warm,
                objective="composite",
            )
        assert slo.evaluations == 0, "warm cache must absorb every solve"
        assert composite.evaluations == 0
        assert slo.cache_hits == first.evaluations + first.cache_hits

    def test_alpha_change_keeps_cache_warm(self, tiny_plan):
        cache = LocalEvalCache()
        first = make_engine(tiny_plan, alpha=0.05).search(
            iterations=2, population=10, seed=0, cache=cache
        )
        assert first.evaluations > 0
        second = make_engine(tiny_plan, alpha=5.0).search(
            iterations=2, population=10, seed=0, cache=cache
        )
        assert second.evaluations == 0

    def test_search_many_none_override_disables_engine_oracle(self, tiny_plan):
        # An explicit "none" override must beat an engine-level oracle —
        # and the result must match a plain engine's, since the dedup key
        # records no oracle for either case.
        staged = make_engine(
            tiny_plan, objective="slo", rerank_oracle=TINY_ORACLE
        )
        plain = make_engine(tiny_plan, objective="slo")
        results = DseEngine.search_many(
            [staged, plain],
            iterations=2,
            population=8,
            seed=0,
            rerank_oracle="none",
        )
        assert results[0] is results[1]
        assert [s.name for s in results[0].oracle_stats] == ["analytical"]

    def test_objective_affects_search_many_dedup(self, tiny_plan):
        paper = make_engine(tiny_plan)
        paper_too = make_engine(tiny_plan)
        slo = make_engine(tiny_plan, objective="slo")
        results = DseEngine.search_many(
            [paper, paper_too, slo], iterations=2, population=8, seed=0
        )
        assert results[0] is results[1], "identical cases share one result"
        assert results[2] is not results[0], (
            "a different objective is a different case"
        )
        assert results[2].objective.startswith("slo")


class TestStagedRerank:
    def test_serving_rerank_selects_by_slo(self, tiny_plan):
        result = make_engine(tiny_plan).search(
            iterations=2,
            population=8,
            seed=0,
            objective="slo",
            rerank_oracle=TINY_ORACLE,
            rerank_top_k=2,
        )
        names = [s.name for s in result.oracle_stats]
        assert names == ["analytical", "serving"]
        serving = result.oracle_stats[1]
        assert serving.invocations > 0
        assert serving.invocations <= 2 * 2  # top-K per generation, cached
        assert result.rerank_invocations == serving.invocations
        metrics = result.best_metrics
        assert metrics is not None and metrics.oracle == "serving"
        assert metrics.p99_ms is not None and metrics.p99_ms > 0
        assert metrics.deadline_miss_rate is not None
        # SLO fitness is -(p99 + w * miss): negative for any real replay.
        assert result.best_fitness == -(
            metrics.p99_ms + 1000.0 * metrics.deadline_miss_rate
        )

    def test_rerank_metrics_cached_across_searches(self, tiny_plan):
        cache = LocalEvalCache()
        engine = make_engine(tiny_plan)
        kwargs = dict(
            iterations=2, population=8, seed=0, objective="slo",
            rerank_oracle=TINY_ORACLE, rerank_top_k=2, cache=cache,
        )
        first = engine.search(**kwargs)
        second = engine.search(**kwargs)
        assert first.oracle_stats[1].invocations > 0
        assert second.oracle_stats[1].invocations == 0
        assert second.oracle_stats[1].cache_hits > 0
        assert second.best_fitness == first.best_fitness

    def test_sim_rerank_runs(self, tiny_plan):
        result = make_engine(tiny_plan).search(
            iterations=2,
            population=6,
            seed=0,
            rerank_oracle=SimOracle(frames=3, warmup=1),
            rerank_top_k=2,
        )
        assert [s.name for s in result.oracle_stats] == ["analytical", "sim"]
        assert result.oracle_stats[1].invocations > 0
        assert result.best_metrics is not None
        assert result.best_metrics.oracle == "sim"

    def test_deterministic_at_same_seed(self, tiny_plan):
        kwargs = dict(
            iterations=2, population=8, seed=4, objective="slo",
            rerank_oracle=TINY_ORACLE, rerank_top_k=2,
        )
        a = make_engine(tiny_plan).search(**kwargs)
        b = make_engine(tiny_plan).search(**kwargs)
        assert a.best_fitness == b.best_fitness
        assert a.best_config == b.best_config

    def test_slo_pick_at_least_matches_paper_pick_on_same_workload(
        self, tiny_plan
    ):
        """The acceptance check: re-ranked design serves the workload no
        worse than the paper-objective pick, replayed identically."""
        engine = make_engine(tiny_plan)
        paper_pick = engine.search(iterations=2, population=8, seed=0)
        slo_pick = engine.search(
            iterations=2,
            population=8,
            seed=0,
            objective="slo",
            rerank_oracle=TINY_ORACLE,
            rerank_top_k=3,
        )

        def replayed_slo_cost(config):
            profile = frame_latency_profile(
                plan=tiny_plan,
                config=config,
                quant=INT8,
                bandwidth_gbps=get_device("Z7045").budget().bandwidth_gbps,
                frequency_mhz=200.0,
                frames=TINY_ORACLE.sim_frames,
                warmup=1,
            )
            report = replay_workload(
                profile,
                workload=TINY_ORACLE.workload(),
                replicas=TINY_ORACLE.replicas,
                policy=TINY_ORACLE.policy,
                batch_window_ms=TINY_ORACLE.batch_window_ms,
            )
            return report.latency_p99_ms + 1000.0 * report.miss_rate

        assert replayed_slo_cost(slo_pick.best_config) <= replayed_slo_cost(
            paper_pick.best_config
        )

    def test_rerank_top_k_validated(self, tiny_plan):
        with pytest.raises(ValueError):
            make_engine(tiny_plan).search(
                iterations=1, population=4, rerank_oracle="sim",
                rerank_top_k=0,
            )
