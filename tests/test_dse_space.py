"""Tests for the design space: customization, GetPF, sizing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.space import Customization, DesignSpace, get_pf


class TestCustomization:
    def test_paper_decoder_customization(self):
        custom = Customization(batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0))
        assert custom.batch_sizes == (1, 2, 2)

    def test_uniform_helper(self):
        custom = Customization.uniform(3, batch_size=2)
        assert custom.batch_sizes == (2, 2, 2)
        assert custom.priorities == (1.0, 1.0, 1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Customization(batch_sizes=(1, 2), priorities=(1.0,))

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            Customization(batch_sizes=(0,), priorities=(1.0,))

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            Customization(batch_sizes=(1,), priorities=(-1.0,))

    def test_validate_against_plan(self, decoder_plan):
        Customization.uniform(3).validate_for(decoder_plan)
        with pytest.raises(ValueError, match="branches"):
            Customization.uniform(2).validate_for(decoder_plan)


class TestGetPF:
    def test_balanced_channel_growth_first(self, decoder_plan):
        stage = decoder_plan.branches[1].stages[1].stage  # 256 -> 160
        cfg = get_pf(stage, 16)
        assert cfg.h == 1
        assert cfg.cpf * cfg.kpf >= 16
        # Balanced doubling keeps the two channel factors within 2x.
        assert max(cfg.cpf, cfg.kpf) <= 2 * min(cfg.cpf, cfg.kpf)

    def test_h_used_only_after_channels_saturate(self, decoder_plan):
        texture = decoder_plan.stage_by_name("texture").stage  # 16 -> 3
        cfg = get_pf(texture, 200)
        assert cfg.cpf == 16
        assert cfg.kpf == 3
        assert cfg.h > 1  # channels alone cap at 48

    def test_thin_layer_scales_past_channel_cap(self, decoder_plan):
        """The core F-CAD claim: H-partition rescues thin HD layers."""
        texture = decoder_plan.stage_by_name("texture").stage
        channel_cap = texture.cpf_max * texture.kpf_max
        cfg = get_pf(texture, 8 * channel_cap)
        assert cfg.pf >= 8 * channel_cap

    def test_snaps_to_non_pow2_caps(self, decoder_plan):
        stage = decoder_plan.stage_by_name("conv11").stage  # 32 -> 26
        cfg = get_pf(stage, stage.cpf_max * stage.kpf_max)
        assert cfg.kpf == 26 or cfg.cpf == 32

    def test_target_one_is_minimal(self, decoder_plan):
        stage = decoder_plan.branches[0].stages[0].stage
        assert get_pf(stage, 1).pf == 1

    def test_never_exceeds_dimension_caps(self, decoder_plan):
        for planned in decoder_plan.all_stages():
            stage = planned.stage
            cfg = get_pf(stage, 10**9)
            assert cfg.cpf <= stage.cpf_max
            assert cfg.kpf <= stage.kpf_max
            assert cfg.h <= stage.h_max

    @settings(max_examples=100, deadline=None)
    @given(target=st.integers(1, 1 << 22))
    def test_pf_reaches_target_or_saturates(self, decoder_plan, target):
        for planned in decoder_plan.all_stages()[:4]:
            stage = planned.stage
            cfg = get_pf(stage, target)
            if cfg.pf < target:
                # Saturated: every dimension at its cap.
                assert cfg.cpf == stage.cpf_max
                assert cfg.kpf == stage.kpf_max
                assert cfg.h == stage.h_max
            cfg.validate_for(planned)


class TestDesignSpace:
    def test_choices_are_legal(self, decoder_plan):
        space = DesignSpace(decoder_plan)
        choices = space.stage_choices(0, 0)  # conv1: 4 -> 128 @ 8x8
        assert choices["cpf"][-1] == 4
        assert choices["kpf"][-1] == 128
        assert choices["h"][-1] == 8

    def test_space_is_astronomically_large(self, decoder_plan):
        space = DesignSpace(decoder_plan)
        # The multi-branch dynamic space motivates the DSE engine: brute
        # force is out of the question.
        assert space.log2_size() > 100
