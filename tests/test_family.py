"""Tests for the decoder-family generality study."""

from __future__ import annotations

import pytest

from repro.experiments.family import FAMILY, run_decoder_family
from repro.sim.dram import DramChannel


@pytest.fixture(scope="module")
def family():
    return run_decoder_family(iterations=3, population=20, seed=0)


class TestFamilyStudy:
    def test_all_families_explored(self, family):
        assert set(family.results) == set(FAMILY)

    def test_every_design_works(self, family):
        for name, result in family.results.items():
            assert result.dse.best_perf.fps > 0, name

    def test_branch_counts_differ(self, family):
        counts = {
            len(result.dse.best_perf.branches)
            for result in family.results.values()
        }
        assert counts == {2, 3, 4}

    def test_modular_branches_all_resourced(self, family):
        perf = family.results["modular_decoder"].dse.best_perf
        for branch in perf.branches:
            assert branch.dsp > 0
            assert branch.fps > 1.0

    def test_render(self, family):
        text = family.render()
        assert "gan_decoder" in text and "modular_decoder" in text


class TestDramValidation:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            DramChannel(bandwidth_gbps=0.0, frequency_mhz=200.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            DramChannel(bandwidth_gbps=12.8, frequency_mhz=0.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            DramChannel(bandwidth_gbps=12.8, frequency_mhz=200.0, efficiency=1.5)
        with pytest.raises(ValueError, match="efficiency"):
            DramChannel(bandwidth_gbps=12.8, frequency_mhz=200.0, efficiency=0.0)
