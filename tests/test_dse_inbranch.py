"""Tests for Algorithm 2: the in-branch greedy search."""

from __future__ import annotations

from repro.devices.budget import ResourceBudget
from repro.dse.inbranch import BranchEvalTable, optimize_branch
from repro.perf.analytical import stage_latency_cycles
from repro.quant.schemes import INT8, INT16


GENEROUS = ResourceBudget(compute=2000, memory=2000, bandwidth_gbps=12.8)
TIGHT = ResourceBudget(compute=64, memory=400, bandwidth_gbps=2.0)
STARVED = ResourceBudget(compute=0, memory=0, bandwidth_gbps=0.0)


class TestFeasibility:
    def test_generous_budget_meets_batch(self, decoder_plan):
        sol = optimize_branch(decoder_plan.branches[0], GENEROUS, 1, INT8)
        assert sol.meets_batch_target
        assert sol.config.batch_size == 1
        assert sol.fps > 10

    def test_resources_stay_within_distribution(self, decoder_plan):
        for budget in (GENEROUS, TIGHT):
            sol = optimize_branch(decoder_plan.branches[0], budget, 1, INT8)
            if sol.config.batch_size == 0:
                continue
            assert sol.perf.dsp <= budget.compute
            assert sol.perf.bram <= budget.memory
            assert sol.perf.bandwidth_gbps <= budget.bandwidth_gbps + 1e-6

    def test_starved_budget_is_infeasible(self, decoder_plan):
        sol = optimize_branch(decoder_plan.branches[0], STARVED, 1, INT8)
        assert not sol.meets_batch_target
        assert sol.config.batch_size == 0
        assert sol.fps == 0.0

    def test_batch_two_costs_about_double(self, decoder_plan):
        one = optimize_branch(decoder_plan.branches[2], GENEROUS, 1, INT8)
        two = optimize_branch(decoder_plan.branches[2], GENEROUS, 2, INT8)
        assert two.meets_batch_target
        assert two.config.batch_size == 2
        assert two.perf.dsp >= 2 * one.perf.dsp * 0.4  # same order
        # With a saturating budget the replicas may tie the single large
        # pipeline, but never lose to it.
        assert two.fps >= one.fps

    def test_unreachable_batch_reported(self, decoder_plan):
        sol = optimize_branch(decoder_plan.branches[1], TIGHT, 8, INT8)
        assert not sol.meets_batch_target


class TestQuality:
    def test_more_compute_never_hurts(self, decoder_plan):
        pipeline = decoder_plan.branches[1]
        small = optimize_branch(
            pipeline, ResourceBudget(256, 800, 6.0), 1, INT8
        )
        large = optimize_branch(
            pipeline, ResourceBudget(1024, 800, 6.0), 1, INT8
        )
        assert large.fps >= small.fps

    def test_growth_phase_load_balances(self, decoder_plan):
        """After growth, no stage can double without leaving the budget."""
        pipeline = decoder_plan.branches[0]
        budget = ResourceBudget(400, 600, 6.0)
        sol = optimize_branch(pipeline, budget, 1, INT8)
        latencies = [
            stage_latency_cycles(planned.stage, cfg)
            for planned, cfg in zip(pipeline.stages, sol.config.stages)
        ]
        bottleneck = max(latencies)
        # The bottleneck dominates: nothing is more than ~2 ladder steps
        # faster than needed (allowing ceil effects on odd channels).
        assert bottleneck / min(latencies) < 64

    def test_int16_slower_than_int8_at_same_budget(self, decoder_plan):
        pipeline = decoder_plan.branches[0]
        budget = ResourceBudget(400, 800, 6.0)
        fps8 = optimize_branch(pipeline, budget, 1, INT8).fps
        fps16 = optimize_branch(pipeline, budget, 1, INT16).fps
        assert fps16 < fps8

    def test_configs_are_legal(self, decoder_plan):
        for branch in decoder_plan.branches:
            sol = optimize_branch(branch, GENEROUS, 1, INT8)
            for planned, cfg in zip(branch.stages, sol.config.stages):
                cfg.validate_for(planned)

    def test_single_stage_branch(self, decoder_plan):
        warp = decoder_plan.branches[2]
        sol = optimize_branch(warp, GENEROUS, 2, INT8)
        assert sol.meets_batch_target
        assert len(sol.config.stages) == 1

    def test_deterministic(self, decoder_plan):
        a = optimize_branch(decoder_plan.branches[1], TIGHT, 2, INT8)
        b = optimize_branch(decoder_plan.branches[1], TIGHT, 2, INT8)
        assert a.config == b.config


class TestZeroSumFallback:
    """``replicas_supported``'s semantics when a resource is unconsumed.

    A pipeline whose stages report zero DSPs and zero BRAMs (e.g. a
    quantization that maps every MAC to LUTs) can never be limited by
    compute or memory: those terms fall back to ``batch_target`` rather
    than dividing by zero or reading a zero budget as "no replicas fit".
    """

    @staticmethod
    def _zero_resource_table(pipeline):
        """A real eval table whose stages report zero DSPs and BRAMs."""
        table = BranchEvalTable(pipeline, INT8)
        real_eval = table.stage_eval

        def stage_eval(idx, cfg):
            return (real_eval(idx, cfg)[0], 0, 0)

        table.stage_eval = stage_eval
        return table

    def test_zero_resource_stages_ignore_compute_and_memory(
        self, decoder_plan
    ):
        pipeline = decoder_plan.branches[2]
        table = self._zero_resource_table(pipeline)
        budget = ResourceBudget(compute=0, memory=0, bandwidth_gbps=12.8)
        sol = optimize_branch(pipeline, budget, 2, INT8, table=table)
        # Only bandwidth can limit; a generous allocation meets the batch
        # even though the compute/memory budgets are literally zero.
        assert sol.meets_batch_target
        assert sol.config.batch_size == 2

    def test_zero_resource_stages_still_bandwidth_limited(
        self, decoder_plan
    ):
        pipeline = decoder_plan.branches[2]
        table = self._zero_resource_table(pipeline)
        starved = ResourceBudget(compute=0, memory=0, bandwidth_gbps=0.0)
        sol = optimize_branch(pipeline, starved, 2, INT8, table=table)
        assert not sol.meets_batch_target
        assert sol.config.batch_size == 0
