"""Tests for Algorithm 1: cross-branch stochastic search and fitness."""

from __future__ import annotations

import pytest

from repro.devices.fpga import get_device
from repro.dse.crossbranch import CrossBranchOptimizer, _normalize_block
from repro.dse.engine import DseEngine
from repro.dse.objective import BranchMetrics, PaperObjective
from repro.dse.space import Customization
from repro.perf.estimator import evaluate
from repro.quant.schemes import INT8


def paper_fitness(fps, priorities, alpha=0.05):
    metrics = BranchMetrics(fps=tuple(fps), meets_batch=(True,) * len(fps))
    return PaperObjective(alpha=alpha).score(metrics, tuple(priorities))


class TestFitness:
    def test_weighted_sum(self):
        assert paper_fitness([10.0, 20.0], (1.0, 1.0), alpha=0.0) == 30.0

    def test_priorities_weight_branches(self):
        low = paper_fitness([10.0, 20.0], (1.0, 1.0), alpha=0.0)
        high = paper_fitness([10.0, 20.0], (1.0, 2.0), alpha=0.0)
        assert high > low

    def test_variance_penalty(self):
        balanced = paper_fitness([15.0, 15.0], (1.0, 1.0), alpha=1.0)
        skewed = paper_fitness([5.0, 25.0], (1.0, 1.0), alpha=1.0)
        assert balanced > skewed

    def test_single_branch_no_variance(self):
        assert paper_fitness([10.0], (1.0,), alpha=5.0) == 10.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paper_fitness([1.0], (1.0, 1.0))


class TestNormalization:
    def test_normalize_sums_to_one(self):
        out = _normalize_block([3.0, 1.0, 0.0])
        assert sum(out) == pytest.approx(1.0)
        assert all(v > 0 for v in out)

    def test_floor_keeps_every_branch_nonzero(self):
        out = _normalize_block([100.0, 0.0])
        assert min(out) > 0.0
        assert max(out) < 1.0


@pytest.fixture(scope="module")
def optimizer(decoder_plan):
    return CrossBranchOptimizer(
        plan=decoder_plan,
        budget=get_device("ZU9CG").budget(),
        customization=Customization(batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)),
        quant=INT8,
    )


class TestSwarm:
    def test_population_positions_are_normalized(self, optimizer):
        import random

        particles = optimizer.init_population(20, random.Random(0))
        assert len(particles) == 20
        B = optimizer.num_branches
        for particle in particles:
            for block in range(3):
                block_sum = sum(particle.position[block * B : (block + 1) * B])
                assert block_sum == pytest.approx(1.0)

    def test_heuristic_seed_tracks_demand(self, optimizer, decoder_plan):
        position = optimizer._heuristic_position()
        B = optimizer.num_branches
        compute = position[:B]
        # Br.2 (texture) dominates the decoder's compute.
        assert compute[1] == max(compute)

    def test_evaluate_returns_branch_solutions(self, optimizer):
        score, solutions = optimizer.evaluate(optimizer._heuristic_position())
        assert len(solutions) == 3
        assert score > 0  # heuristic split is feasible on ZU9CG

    def test_search_history_is_monotone(self, optimizer):
        _, _, history, _ = optimizer.search(
            iterations=5, population=20, seed=0
        )
        assert len(history) == 5
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_search_is_deterministic_per_seed(self, decoder_plan):
        def run(seed):
            opt = CrossBranchOptimizer(
                plan=decoder_plan,
                budget=get_device("ZU9CG").budget(),
                customization=Customization.uniform(3),
                quant=INT8,
            )
            fitness, config, _, _ = opt.search(
                iterations=3, population=15, seed=seed
            )
            return fitness, config

        assert run(7) == run(7)

    def test_best_config_respects_budget(self, optimizer, decoder_plan):
        _, config, _, _ = optimizer.search(iterations=4, population=20, seed=1)
        perf = evaluate(decoder_plan, config, INT8, 200.0)
        budget = get_device("ZU9CG").budget()
        assert perf.total_dsp <= budget.compute
        assert perf.total_bram <= budget.memory

    def test_batch_customization_honoured(self, optimizer):
        _, config, _, _ = optimizer.search(iterations=4, population=20, seed=1)
        assert [b.batch_size for b in config.branches] == [1, 2, 2]


class TestEngine:
    def test_engine_end_to_end(self, decoder_plan):
        engine = DseEngine(
            plan=decoder_plan,
            budget=get_device("ZU17EG").budget(),
            customization=Customization(batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)),
            quant=INT8,
        )
        result = engine.search(iterations=4, population=25, seed=0)
        assert result.best_perf.fps > 0
        assert result.convergence_iteration <= result.iterations
        assert result.runtime_seconds > 0
        assert result.evaluations > 0

    def test_engine_requires_quant(self, decoder_plan):
        with pytest.raises(ValueError, match="quantization"):
            DseEngine(
                plan=decoder_plan,
                budget=get_device("ZU17EG").budget(),
                quant=None,
            )

    def test_priorities_shift_resources(self, decoder_plan):
        """Raising Br.1's priority should not lower its throughput."""
        budget = get_device("Z7045").budget()

        def run(priorities):
            engine = DseEngine(
                plan=decoder_plan,
                budget=budget,
                customization=Customization(
                    batch_sizes=(1, 1, 1), priorities=priorities
                ),
                quant=INT8,
            )
            return engine.search(iterations=5, population=30, seed=3)

        neutral = run((1.0, 1.0, 1.0))
        boosted = run((8.0, 0.5, 0.5))
        assert (
            boosted.best_perf.branches[0].fps
            >= neutral.best_perf.branches[0].fps
        )

    def test_render_mentions_branches(self, decoder_plan):
        engine = DseEngine(
            plan=decoder_plan,
            budget=get_device("ZU17EG").budget(),
            customization=Customization.uniform(3),
            quant=INT8,
        )
        result = engine.search(iterations=2, population=10, seed=0)
        text = result.render()
        assert "Br.1" in text and "Br.3" in text
