"""Bit-identity of the batched Algorithm-2 kernel vs the scalar solver.

The kernel's contract is absolute: for any sequence of budget buckets,
``solve_buckets`` returns solutions whose pickles are byte-for-byte
identical to calling ``optimize_branch`` per bucket. The randomized
suites here hammer that over thousands of budgets per branch (including
zero-resource and saturating edge budgets and the customization's
``max_h`` / ``max_pf`` constraints), and the end-to-end tests pin the
seeded search results across the surrogate modes that ride on top of the
kernel-routed evaluation path.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.devices.budget import ResourceBudget
from repro.dse.inbranch import BranchEvalTable, optimize_branch
from repro.dse.kernel import (
    KernelTimings,
    _replicas_supported,
    solve_buckets,
)
from repro.dse.worker import canonical_rd, clear_process_caches, quantize_rd
from repro.quant.schemes import INT8

#: Edge budgets every randomized stream includes: fully starved, the
#: smallest nonzero grid point, and a budget far past any saturation.
EDGE_BUDGETS = (
    ResourceBudget(compute=0, memory=0, bandwidth_gbps=0.0),
    ResourceBudget(compute=4, memory=4, bandwidth_gbps=0.05),
    ResourceBudget(compute=100_000, memory=100_000, bandwidth_gbps=1000.0),
)


def random_budgets(seed: int, count: int) -> list[ResourceBudget]:
    """Grid-snapped random budgets, with zero-heavy tails mixed in."""
    rng = random.Random(seed)
    budgets = list(EDGE_BUDGETS)
    while len(budgets) < count:
        # One axis in five is forced to zero so the zero-resource and
        # zero-bandwidth code paths stay continuously exercised.
        compute = 0 if rng.random() < 0.2 else rng.randrange(0, 3000)
        memory = 0 if rng.random() < 0.2 else rng.randrange(0, 3000)
        bandwidth = 0.0 if rng.random() < 0.2 else rng.uniform(0.0, 16.0)
        budgets.append(
            canonical_rd(
                quantize_rd(
                    ResourceBudget(
                        compute=compute,
                        memory=memory,
                        bandwidth_gbps=bandwidth,
                    )
                )
            )
        )
    return budgets


def assert_bit_identical(pipeline, budgets, batch_target, **table_kwargs):
    table = BranchEvalTable(pipeline, INT8, **table_kwargs)
    batched = solve_buckets(table, budgets, batch_target)
    for rd, batch_sol in zip(budgets, batched):
        scalar_sol = optimize_branch(
            pipeline,
            rd,
            batch_target,
            INT8,
            table_kwargs.get("frequency_mhz", 200.0),
            max_h=table_kwargs.get("max_h"),
            max_pf=table_kwargs.get("max_pf"),
            table=table,
        )
        assert pickle.dumps(batch_sol) == pickle.dumps(scalar_sol), (
            f"kernel diverged from scalar at rd={rd}, "
            f"batch_target={batch_target}"
        )


class TestRandomizedIdentity:
    @pytest.mark.parametrize("branch_idx", [0, 1, 2])
    def test_batched_matches_scalar(self, decoder_plan, branch_idx):
        """3000+ random budgets per branch, batch targets 1/2/4."""
        budgets = random_budgets(seed=branch_idx, count=3000)
        pipeline = decoder_plan.branches[branch_idx]
        for batch_target, chunk in zip(
            (1, 2, 4),
            (budgets[0::3], budgets[1::3], budgets[2::3]),
        ):
            assert_bit_identical(
                pipeline, list(chunk) + list(EDGE_BUDGETS), batch_target
            )

    def test_constrained_customizations(self, decoder_plan):
        """The max_h / max_pf clamps flow through the ladder identically."""
        budgets = random_budgets(seed=99, count=400)
        pipeline = decoder_plan.branches[0]
        assert_bit_identical(pipeline, budgets, 2, max_h=1)
        assert_bit_identical(pipeline, budgets, 2, max_pf=64)
        assert_bit_identical(pipeline, budgets, 1, max_h=1, max_pf=16)

    def test_single_stage_branch(self, decoder_plan):
        budgets = random_budgets(seed=7, count=500)
        assert_bit_identical(decoder_plan.branches[2], budgets, 4)

    def test_empty_and_single_bucket(self, decoder_plan):
        table = BranchEvalTable(decoder_plan.branches[0], INT8)
        assert solve_buckets(table, [], 1) == []
        [sol] = solve_buckets(table, [EDGE_BUDGETS[2]], 1)
        assert sol.meets_batch_target

    def test_repeated_buckets_share_solutions(self, decoder_plan):
        """Duplicate buckets resolve to one memoized solution object."""
        table = BranchEvalTable(decoder_plan.branches[0], INT8)
        rd = ResourceBudget(compute=800, memory=800, bandwidth_gbps=6.0)
        a, b = solve_buckets(table, [rd, rd], 1)
        assert a is b

    def test_timings_accumulate(self, decoder_plan):
        table = BranchEvalTable(decoder_plan.branches[0], INT8)
        timings = KernelTimings()
        solve_buckets(table, random_budgets(3, 64), 1, timings)
        assert timings.ladder_seconds > 0.0
        assert timings.growth_seconds >= 0.0
        assert timings.measure_seconds > 0.0


class TestReplicasSupportedFallback:
    """The vectorized min(C/Σc, M/Σm, BW/Σbw) and its zero-sum semantics."""

    def test_zero_sums_fall_back_to_batch_target(self):
        # A pipeline consuming no DSPs/BRAMs (all-LUT mapping) must never
        # be limited by compute/memory — even under a zero budget.
        out = _replicas_supported(
            c_sum=np.array([0], dtype=np.int64),
            m_sum=np.array([0], dtype=np.int64),
            maxlat=np.array([1000], dtype=np.int64),
            compute=np.array([0], dtype=np.int64),
            memory=np.array([0], dtype=np.int64),
            bw_margin=np.array([1e9], dtype=np.float64),
            batch_target=8,
            dram_bytes=1.0,
            freq_hz=2e8,
        )
        assert out[0] == 8

    def test_zero_bw_replica_falls_back_to_batch_target(self):
        # dram_bytes == 0 means the pipeline touches no external memory:
        # bandwidth can never be the limiter.
        out = _replicas_supported(
            c_sum=np.array([10], dtype=np.int64),
            m_sum=np.array([10], dtype=np.int64),
            maxlat=np.array([1000], dtype=np.int64),
            compute=np.array([100], dtype=np.int64),
            memory=np.array([55], dtype=np.int64),
            bw_margin=np.array([0.0], dtype=np.float64),
            batch_target=16,
            dram_bytes=0.0,
            freq_hz=2e8,
        )
        assert out[0] == 5  # memory is the binding term (55 // 10)

    def test_min_over_terms(self):
        out = _replicas_supported(
            c_sum=np.array([4, 4], dtype=np.int64),
            m_sum=np.array([2, 2], dtype=np.int64),
            maxlat=np.array([100, 100], dtype=np.int64),
            compute=np.array([40, 8], dtype=np.int64),
            memory=np.array([100, 100], dtype=np.int64),
            bw_margin=np.array([1e6, 1e6], dtype=np.float64),
            batch_target=64,
            dram_bytes=1.0,
            freq_hz=2e8,
        )
        assert out[0] == 10  # compute-bound: 40 // 4
        assert out[1] == 2  # tighter compute: 8 // 4


class TestEndToEndIdentity:
    """Seeded search identity across the kernel-routed evaluation path."""

    def _run(self, surrogate: str):
        from repro.experiments.convergence import run_convergence

        clear_process_caches()
        return run_convergence(
            searches=2,
            iterations=3,
            population=12,
            workers=1,
            surrogate=surrogate,
        )

    @pytest.fixture(scope="class")
    def off_run(self):
        from repro.experiments.convergence import run_convergence

        clear_process_caches()
        return run_convergence(
            searches=2, iterations=3, population=12, workers=1
        )

    def test_generation_evaluator_matches_scalar_path(self):
        """The batched generation path ≡ the per-candidate scalar loop."""
        from repro.dse.cache import LocalEvalCache
        from repro.dse.worker import (
            EvalSpec,
            GenerationEvaluator,
            evaluate_candidate,
        )
        from repro.construction.reorg import build_pipeline_plan
        from repro.devices.fpga import get_device
        from repro.dse.space import Customization
        from repro.models.codec_avatar import build_codec_avatar_decoder
        from repro.quant.schemes import get_scheme

        plan = build_pipeline_plan(build_codec_avatar_decoder())
        device = get_device("ZU9CG")
        spec = EvalSpec(
            plan=plan,
            budget=device.budget(),
            customization=Customization(
                batch_sizes=(1, 1, 2), priorities=(1.0, 1.0, 1.0)
            ),
            quant=get_scheme("int8"),
            frequency_mhz=device.default_frequency_mhz,
        )
        rng = random.Random(17)
        B = plan.num_branches
        positions = [
            [rng.random() for _ in range(3 * B)] for _ in range(40)
        ]
        batched = GenerationEvaluator(spec, LocalEvalCache())(positions)
        scalar_cache = LocalEvalCache()
        scalar = [
            evaluate_candidate(spec, position, scalar_cache)
            for position in positions
        ]
        for b, s in zip(batched, scalar):
            assert b.score == s.score
            assert b.metrics == s.metrics
            assert pickle.dumps(b.solutions) == pickle.dumps(s.solutions)

    def test_verify_mode_reproduces_off(self, off_run):
        verify = self._run("verify")
        assert [
            (s.best_fitness, s.best_config) for s in verify.searches
        ] == [(s.best_fitness, s.best_config) for s in off_run.searches]

    def test_prune_mode_deterministic(self, off_run):
        prune_a = self._run("prune")
        prune_b = self._run("prune")
        assert [
            (s.best_fitness, s.best_config, s.history)
            for s in prune_a.searches
        ] == [
            (s.best_fitness, s.best_config, s.history)
            for s in prune_b.searches
        ]

    def test_off_run_repeats_bit_identically(self, off_run):
        again = self._run("off")
        assert [
            (s.best_fitness, s.best_config, s.history)
            for s in again.searches
        ] == [
            (s.best_fitness, s.best_config, s.history)
            for s in off_run.searches
        ]
