"""Tests for the profiler: per-layer metrics and branch semantics."""

from __future__ import annotations

from repro.profiler.network import profile_network
from repro.profiler.report import render_branch_table, render_layer_table
from tests.conftest import make_tiny_decoder


class TestLayerProfiles:
    def test_conv_ops_are_twice_macs_plus_bias(self, decoder_graph):
        profile = profile_network(decoder_graph)
        conv = profile.by_name["conv1"]
        assert conv.ops == 2 * conv.macs + conv.elementwise_ops
        assert conv.elementwise_ops == conv.out_shape.numel  # bias adds

    def test_upsample_has_no_macs(self, decoder_graph):
        profile = profile_network(decoder_graph)
        ups = [p for p in profile.layers if p.kind == "upsample"]
        assert ups
        assert all(p.macs == 0 and p.params == 0 for p in ups)

    def test_reuse_positive_for_compute_layers(self, decoder_graph):
        profile = profile_network(decoder_graph)
        for layer in profile.layers:
            if layer.macs > 0:
                assert layer.reuse > 0


class TestBranchSemantics:
    def test_shared_counted_in_both_branches(self):
        graph = make_tiny_decoder()
        profile = profile_network(graph)
        big, small = profile.branches
        # Each branch row includes the shared front.
        assert big.shared_ops > 0
        assert big.shared_ops == small.shared_ops
        # Row sum exceeds unique total by exactly one shared copy.
        assert profile.sum_of_branch_ops == (
            profile.total_ops + big.shared_ops
        )

    def test_own_ops_excludes_shared(self):
        profile = profile_network(make_tiny_decoder())
        for branch in profile.branches:
            assert branch.own_ops == branch.ops - branch.shared_ops
            assert branch.own_ops >= 0

    def test_unique_totals_count_layers_once(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert profile.total_ops == sum(p.ops for p in profile.layers)
        assert profile.total_params == sum(p.params for p in profile.layers)

    def test_branch_indices_follow_output_order(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert [b.output_name for b in profile.branches] == [
            "geometry",
            "texture",
            "warp_field",
        ]

    def test_branch_lookup(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert profile.branch(1).output_name == "texture"


class TestReports:
    def test_layer_table_renders(self, decoder_graph):
        text = render_layer_table(profile_network(decoder_graph))
        assert "conv1" in text
        assert "GOP" in text

    def test_layer_table_compute_only_filter(self, decoder_graph):
        profile = profile_network(decoder_graph)
        full = render_layer_table(profile, compute_only=False)
        compute = render_layer_table(profile, compute_only=True)
        assert len(full.splitlines()) > len(compute.splitlines())

    def test_branch_table_has_unique_row(self, decoder_graph):
        text = render_branch_table(profile_network(decoder_graph))
        assert "unique" in text
