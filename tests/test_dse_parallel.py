"""Parallel DSE: worker purity, shared caching, batch sweeps, determinism."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.devices.fpga import get_device
from repro.dse.cache import LocalEvalCache, SharedEvalCache
from repro.dse.engine import DseEngine
from repro.dse.space import Customization
from repro.dse.worker import (
    EvalSpec,
    SweepWorkerPool,
    evaluate_candidate,
)
from repro.fcad.flow import FCad, run_sweep, sweep_grid
from repro.quant.schemes import INT8, INT16
from repro.utils.rng import seed_fingerprint
from tests.conftest import make_tiny_decoder


def make_engine(plan, device="Z7045", quant=INT8):
    return DseEngine(
        plan=plan,
        budget=get_device(device).budget(),
        customization=Customization.uniform(plan.num_branches),
        quant=quant,
    )


@pytest.fixture(scope="module")
def spec(tiny_plan_module):
    return make_engine(tiny_plan_module).spec


@pytest.fixture(scope="module")
def tiny_plan_module():
    from repro.construction.reorg import build_pipeline_plan

    return build_pipeline_plan(make_tiny_decoder())


class TestEvalSpec:
    def test_picklable(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.plan.num_branches == spec.plan.num_branches
        assert clone.digest == spec.digest

    def test_digest_stable_across_instances(self, tiny_plan_module):
        assert (
            make_engine(tiny_plan_module).spec.digest
            == make_engine(tiny_plan_module).spec.digest
        )

    def test_digest_separates_specs(self, tiny_plan_module):
        int8 = make_engine(tiny_plan_module, quant=INT8).spec
        int16 = make_engine(tiny_plan_module, quant=INT16).spec
        other_device = make_engine(tiny_plan_module, device="ZU17EG").spec
        assert len({int8.digest, int16.digest, other_device.digest}) == 3


class TestEvaluateCandidate:
    def test_pure_and_cached(self, spec):
        cache = LocalEvalCache()
        position = [0.5, 0.5] * 3
        first = evaluate_candidate(spec, position, cache)
        second = evaluate_candidate(spec, position, cache)
        assert first.score == second.score
        assert first.solutions == second.solutions
        # First call misses per branch, second is served entirely from cache.
        assert first.evaluations == spec.plan.num_branches
        assert second.evaluations == 0
        assert second.cache_hits == spec.plan.num_branches

    def test_infeasible_positions_penalized(self, tiny_plan_module):
        from repro.devices.budget import ResourceBudget
        from repro.dse.fitness import fitness_score
        from repro.dse.worker import INFEASIBILITY_PENALTY

        spec = EvalSpec(
            plan=tiny_plan_module,
            budget=ResourceBudget(compute=64, memory=64, bandwidth_gbps=1.0),
            customization=Customization.uniform(2),
            quant=INT8,
        )
        starved = [0.99, 0.01] * 3  # branch 2 starved of everything
        result = evaluate_candidate(spec, starved, LocalEvalCache())
        shortfall = sum(
            1 for s in result.solutions if not s.meets_batch_target
        )
        assert shortfall >= 1
        raw = fitness_score(
            [s.fps for s in result.solutions],
            spec.customization.priorities,
            spec.alpha,
        )
        assert result.score == raw - INFEASIBILITY_PENALTY * shortfall


class TestCaches:
    def test_local_roundtrip(self):
        cache = LocalEvalCache()
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert len(cache) == 1
        assert dict(cache.items()) == {"k": 1}

    def test_shared_roundtrip_and_pickle(self):
        with SharedEvalCache() as cache:
            cache.put("k", (1, 2))
            clone = pickle.loads(pickle.dumps(cache))
            # The clone reconnects to the same manager-backed store.
            assert clone.get("k") == (1, 2)
            clone.put("j", 3)
            assert cache.get("j") == 3
            assert len(cache) == 2

    def test_shared_preload(self):
        local = LocalEvalCache()
        local.put("k", "v")
        with SharedEvalCache() as cache:
            cache.preload(local.items())
            assert cache.get("k") == "v"


class TestParallelDeterminism:
    def test_workers4_matches_serial(self, tiny_plan_module):
        """The acceptance bar: workers=4 is bit-identical to workers=1."""
        engine = make_engine(tiny_plan_module)
        serial = engine.search(iterations=2, population=8, seed=11)
        parallel = engine.search(
            iterations=2, population=8, seed=11, workers=4
        )
        assert parallel.best_fitness == serial.best_fitness
        assert parallel.best_config == serial.best_config
        assert parallel.history == serial.history
        assert parallel.convergence_iteration == serial.convergence_iteration
        assert serial.workers == 1 and parallel.workers == 4

    def test_flow_workers_match(self, tiny_plan_module):
        graph = make_tiny_decoder()

        def run(workers):
            return FCad(
                network=graph, device=get_device("Z7045"), quant="int8"
            ).run(iterations=2, population=8, seed=4, workers=workers)

        assert (
            run(2).dse.best_config == run(1).dse.best_config
        )


class TestSearchMany:
    def test_duplicate_cases_deduplicated(self, tiny_plan_module):
        a = make_engine(tiny_plan_module)
        b = make_engine(tiny_plan_module)
        results = DseEngine.search_many(
            [a, b, a], iterations=2, population=8, seed=3
        )
        assert results[0] is results[1] is results[2]

    def test_live_rng_seeds_never_deduplicated(self, tiny_plan_module):
        engine = make_engine(tiny_plan_module)
        rng = random.Random(0)
        results = DseEngine.search_many(
            [engine, engine],
            iterations=2,
            population=8,
            seeds=[rng, rng],
        )
        assert results[0] is not results[1]

    def test_shared_cache_warms_repeated_sweep(self, tiny_plan_module):
        """The second search of a sweep reuses the first one's solutions."""
        a = make_engine(tiny_plan_module)
        b = make_engine(tiny_plan_module)
        cold = b.search(iterations=3, population=12, seed=6)
        swept = DseEngine.search_many(
            [a, b], iterations=3, population=12, seeds=[5, 6]
        )
        assert swept[1].cache_hits > 0
        assert swept[1].evaluations < cold.evaluations
        # Warm cache never changes what the search finds.
        assert swept[1].best_fitness == cold.best_fitness
        assert swept[1].best_config == cold.best_config

    def test_seed_count_mismatch_rejected(self, tiny_plan_module):
        with pytest.raises(ValueError, match="seeds"):
            DseEngine.search_many(
                [make_engine(tiny_plan_module)], seeds=[1, 2]
            )

    def test_seed_fingerprints(self):
        assert seed_fingerprint(7) == ("int", 7)
        assert seed_fingerprint(7) == seed_fingerprint(7)
        assert seed_fingerprint(None) is None
        assert seed_fingerprint(random.Random(7)) is None
        assert seed_fingerprint(True) is None


class TestSweepApi:
    def test_grid_times_out_cases(self):
        flows = sweep_grid(
            networks=[make_tiny_decoder()],
            devices=["Z7045", "ZU17EG"],
            quants=["int8", "int16"],
        )
        assert len(flows) == 4
        assert {f.quant.name for f in flows} == {"int8", "int16"}

    def test_run_sweep_matches_individual_runs(self):
        graph = make_tiny_decoder()
        flows = sweep_grid(
            networks=[graph], devices=["Z7045", "ZU17EG"], quants=["int8"]
        )
        swept = run_sweep(flows, iterations=2, population=8, seed=0)
        assert len(swept) == 2
        solo = flows[0].run(iterations=2, population=8, seed=0)
        assert swept[0].dse.best_fitness == solo.dse.best_fitness
        assert swept[0].dse.best_config == solo.dse.best_config

    def test_run_sweep_dedups_duplicate_flows(self):
        graph = make_tiny_decoder()
        flows = sweep_grid(
            networks=[graph], devices=["Z7045", "Z7045"], quants=["int8"]
        )
        swept = run_sweep(flows, iterations=2, population=8, seed=0)
        assert swept[0].dse is swept[1].dse

    def test_parallel_sweep_matches_serial_sweep(self):
        graph = make_tiny_decoder()
        flows = sweep_grid(
            networks=[graph], devices=["Z7045", "ZU17EG"], quants=["int8"]
        )
        serial = run_sweep(flows, iterations=2, population=8, seed=1)
        parallel = run_sweep(
            flows, iterations=2, population=8, seed=1, workers=2
        )
        for s, p in zip(serial, parallel):
            assert s.dse.best_fitness == p.dse.best_fitness
            assert s.dse.best_config == p.dse.best_config


class TestSweepWorkerPool:
    def test_pool_matches_inline_evaluation(self, tiny_plan_module):
        """One long-lived pool returns exactly what inline eval computes."""
        int8 = make_engine(tiny_plan_module, quant=INT8).spec
        int16 = make_engine(tiny_plan_module, quant=INT16).spec
        positions = [[0.5, 0.5] * 3, [0.7, 0.3] * 3]
        with SharedEvalCache() as cache:
            with SweepWorkerPool(2, cache) as pool:
                for spec in (int8, int16):
                    pooled = pool.run(spec, positions)
                    inline = [
                        evaluate_candidate(spec, pos, LocalEvalCache())
                        for pos in positions
                    ]
                    assert [r.score for r in pooled] == [
                        r.score for r in inline
                    ]
                    assert [r.solutions for r in pooled] == [
                        r.solutions for r in inline
                    ]
                # Both problem specs were served by the same worker set.
                assert pool.specs_registered == 2
            # close() removed its bookkeeping from the (caller-owned)
            # cache: only genuine evaluation entries remain.
            assert all(
                key[0] != "__spec__" for key, _ in cache.items()
            )

    def test_spec_registration_idempotent(self, tiny_plan_module):
        spec = make_engine(tiny_plan_module).spec
        with SharedEvalCache() as cache:
            with SweepWorkerPool(1, cache) as pool:
                pool.register(spec)
                pool.register(spec)
                assert pool.specs_registered == 1

    def test_requires_shared_cache(self):
        with pytest.raises(TypeError, match="cross-process"):
            SweepWorkerPool(1, LocalEvalCache())

    def test_search_many_reuses_one_pool(self, tiny_plan_module, monkeypatch):
        """A parallel sweep forks exactly one pool for all of its cases."""
        created: list[SweepWorkerPool] = []
        registered: set[str] = set()
        original_init = SweepWorkerPool.__init__
        original_register = SweepWorkerPool.register

        def counting_init(self, workers, cache):
            original_init(self, workers, cache)
            created.append(self)

        def counting_register(self, spec):
            registered.add(spec.digest)
            original_register(self, spec)

        monkeypatch.setattr(SweepWorkerPool, "__init__", counting_init)
        monkeypatch.setattr(SweepWorkerPool, "register", counting_register)
        engines = [
            make_engine(tiny_plan_module, device=device)
            for device in ("Z7045", "ZU17EG", "ZU9CG")
        ]
        results = DseEngine.search_many(
            engines, iterations=2, population=8, seed=0, workers=2
        )
        assert len(results) == 3
        assert len(created) == 1
        assert len(registered) == 3

    def test_local_cache_promoted_for_parallel_sweep(self, tiny_plan_module):
        """workers>1 + LocalEvalCache still gets one pool, and the new
        entries drain back into the caller's cache (no bookkeeping keys)."""
        engines = [
            make_engine(tiny_plan_module, device=device)
            for device in ("Z7045", "ZU17EG")
        ]
        local = LocalEvalCache()
        pooled = DseEngine.search_many(
            engines, iterations=2, population=8, seed=0,
            workers=2, cache=local,
        )
        keys = [key for key, _ in local.items()]
        assert keys, "promoted cache was not drained back"
        assert not any(key[0] == "__spec__" for key in keys)
        serial = DseEngine.search_many(
            engines, iterations=2, population=8, seed=0
        )
        assert [r.best_config for r in pooled] == [
            r.best_config for r in serial
        ]

    def test_pooled_sweep_matches_serial_sweep(self, tiny_plan_module):
        engines = [
            make_engine(tiny_plan_module, device=device)
            for device in ("Z7045", "ZU17EG")
        ]
        serial = DseEngine.search_many(
            engines, iterations=2, population=8, seed=2
        )
        pooled = DseEngine.search_many(
            engines, iterations=2, population=8, seed=2, workers=2
        )
        for s, p in zip(serial, pooled):
            assert s.best_fitness == p.best_fitness
            assert s.best_config == p.best_config
            assert s.history == p.history


class TestResultStats:
    def test_cache_hit_rate_surfaced(self, tiny_plan_module):
        result = make_engine(tiny_plan_module).search(
            iterations=3, population=10, seed=0
        )
        assert result.cache_lookups == result.evaluations + result.cache_hits
        assert 0.0 <= result.cache_hit_rate <= 1.0
        assert "cache hits" in result.render()
