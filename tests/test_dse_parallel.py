"""Parallel DSE: worker purity, generation dedup, batch sweeps, determinism."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.devices.fpga import get_device
from repro.dse.cache import LocalEvalCache, SharedEvalCache
from repro.dse.engine import DseEngine
from repro.dse.space import Customization
from repro.dse.worker import (
    EvalSpec,
    GenerationEvaluator,
    SweepWorkerPool,
    candidate_keys,
    evaluate_candidate,
    solve_bucket,
    solve_chunk,
)
from repro.fcad.flow import FCad, run_sweep, sweep_grid
from repro.quant.schemes import INT8, INT16
from repro.utils.rng import seed_fingerprint
from tests.conftest import make_tiny_decoder


def make_engine(plan, device="Z7045", quant=INT8):
    return DseEngine(
        plan=plan,
        budget=get_device(device).budget(),
        customization=Customization.uniform(plan.num_branches),
        quant=quant,
    )


@pytest.fixture(scope="module")
def spec(tiny_plan_module):
    return make_engine(tiny_plan_module).spec


@pytest.fixture(scope="module")
def tiny_plan_module():
    from repro.construction.reorg import build_pipeline_plan

    return build_pipeline_plan(make_tiny_decoder())


class TestEvalSpec:
    def test_picklable(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.plan.num_branches == spec.plan.num_branches
        assert clone.digest == spec.digest

    def test_digest_stable_across_instances(self, tiny_plan_module):
        assert (
            make_engine(tiny_plan_module).spec.digest
            == make_engine(tiny_plan_module).spec.digest
        )

    def test_digest_separates_specs(self, tiny_plan_module):
        int8 = make_engine(tiny_plan_module, quant=INT8).spec
        int16 = make_engine(tiny_plan_module, quant=INT16).spec
        other_device = make_engine(tiny_plan_module, device="ZU17EG").spec
        assert len({int8.digest, int16.digest, other_device.digest}) == 3


class TestEvaluateCandidate:
    def test_pure_and_cached(self, spec):
        cache = LocalEvalCache()
        position = [0.5, 0.5] * 3
        first = evaluate_candidate(spec, position, cache)
        second = evaluate_candidate(spec, position, cache)
        assert first.score == second.score
        assert first.solutions == second.solutions
        # First call misses per branch, second is served entirely from cache.
        assert first.evaluations == spec.plan.num_branches
        assert second.evaluations == 0
        assert second.cache_hits == spec.plan.num_branches

    def test_infeasible_positions_penalized(self, tiny_plan_module):
        from repro.devices.budget import ResourceBudget
        from repro.dse.objective import PaperObjective
        from repro.dse.worker import INFEASIBILITY_PENALTY

        spec = EvalSpec(
            plan=tiny_plan_module,
            budget=ResourceBudget(compute=64, memory=64, bandwidth_gbps=1.0),
            customization=Customization.uniform(2),
            quant=INT8,
        )
        starved = [0.99, 0.01] * 3  # branch 2 starved of everything
        result = evaluate_candidate(spec, starved, LocalEvalCache())
        shortfall = sum(
            1 for s in result.solutions if not s.meets_batch_target
        )
        assert shortfall >= 1
        assert result.metrics.shortfall == shortfall
        raw = PaperObjective().score(
            result.metrics, spec.customization.priorities
        )
        assert result.score == raw - INFEASIBILITY_PENALTY * shortfall


class TestGenerationEvaluator:
    """The zero-IPC data path: dedup in the parent, deltas from workers."""

    def test_matches_per_candidate_evaluation(self, spec):
        positions = [[0.5, 0.5] * 3, [0.7, 0.3] * 3, [0.4, 0.6] * 3]
        batched = GenerationEvaluator(spec, LocalEvalCache())(positions)
        inline_cache = LocalEvalCache()
        inline = [
            evaluate_candidate(spec, pos, inline_cache) for pos in positions
        ]
        assert [r.score for r in batched] == [r.score for r in inline]
        assert [r.solutions for r in batched] == [r.solutions for r in inline]
        assert [r.evaluations for r in batched] == [
            r.evaluations for r in inline
        ]
        assert [r.cache_hits for r in batched] == [r.cache_hits for r in inline]

    def test_generation_dedup_charges_first_candidate(self, spec):
        position = [0.5, 0.5] * 3
        results = GenerationEvaluator(spec, LocalEvalCache())(
            [position, list(position), list(position)]
        )
        B = spec.plan.num_branches
        # One candidate pays for the unique buckets; clones ride the cache.
        assert results[0].evaluations == B
        assert results[1].evaluations == 0
        assert results[1].cache_hits == B
        assert results[2].cache_hits == B
        assert results[0].score == results[1].score == results[2].score

    def test_warm_cache_means_zero_evaluations(self, spec):
        cache = LocalEvalCache()
        evaluator = GenerationEvaluator(spec, cache)
        positions = [[0.5, 0.5] * 3, [0.7, 0.3] * 3]
        evaluator(positions)
        rerun = evaluator(positions)
        assert all(r.evaluations == 0 for r in rerun)
        assert all(r.cache_hits == spec.plan.num_branches for r in rerun)

    def test_timings_and_stage_stats_accumulate(self, spec):
        evaluator = GenerationEvaluator(spec, LocalEvalCache())
        evaluator([[0.5, 0.5] * 3, [0.7, 0.3] * 3])
        assert evaluator.timings.eval_seconds > 0
        assert evaluator.timings.cache_seconds > 0
        assert evaluator.timings.overhead_seconds == 0  # serial: no pool
        assert evaluator.stage_lookups > 0
        assert 0 <= evaluator.stage_hits <= evaluator.stage_lookups


class TestSolveChunk:
    def test_chunk_returns_all_requested_entries(self, spec):
        keys = candidate_keys(spec, [0.5, 0.5] * 3)
        result = solve_chunk(spec, keys)
        assert [key for key, _ in result.entries] == keys
        for key, solution in result.entries:
            assert solution == solve_bucket(spec, key[1], key[2])
        assert result.solve_seconds >= 0
        assert result.stage_lookups > 0

    def test_duplicate_keys_in_chunk_solved_once(self, spec):
        keys = candidate_keys(spec, [0.5, 0.5] * 3)
        doubled = list(keys) + list(keys)
        result = solve_chunk(spec, doubled)
        assert len(result.entries) == len(doubled)
        # Every requested key still comes back, duplicates and all.
        assert [key for key, _ in result.entries] == doubled


class TestParallelDeterminism:
    def test_workers4_matches_serial(self, tiny_plan_module):
        """The acceptance bar: workers=4 is bit-identical to workers=1."""
        engine = make_engine(tiny_plan_module)
        serial = engine.search(iterations=2, population=8, seed=11)
        parallel = engine.search(
            iterations=2, population=8, seed=11, workers=4
        )
        assert parallel.best_fitness == serial.best_fitness
        assert parallel.best_config == serial.best_config
        assert parallel.history == serial.history
        assert parallel.convergence_iteration == serial.convergence_iteration
        assert serial.workers == 1 and parallel.workers == 4

    def test_parallel_accounting_matches_serial(self, tiny_plan_module):
        """Dedup accounting is the same arithmetic in both modes."""
        engine = make_engine(tiny_plan_module)
        serial = engine.search(iterations=2, population=8, seed=11)
        parallel = engine.search(
            iterations=2, population=8, seed=11, workers=2
        )
        assert parallel.evaluations == serial.evaluations
        assert parallel.cache_hits == serial.cache_hits

    def test_flow_workers_match(self, tiny_plan_module):
        graph = make_tiny_decoder()

        def run(workers):
            return FCad(
                network=graph, device=get_device("Z7045"), quant="int8"
            ).run(iterations=2, population=8, seed=4, workers=workers)

        assert (
            run(2).dse.best_config == run(1).dse.best_config
        )


class TestSearchMany:
    def test_duplicate_cases_deduplicated(self, tiny_plan_module):
        a = make_engine(tiny_plan_module)
        b = make_engine(tiny_plan_module)
        results = DseEngine.search_many(
            [a, b, a], iterations=2, population=8, seed=3
        )
        assert results[0] is results[1] is results[2]

    def test_live_rng_seeds_never_deduplicated(self, tiny_plan_module):
        engine = make_engine(tiny_plan_module)
        rng = random.Random(0)
        results = DseEngine.search_many(
            [engine, engine],
            iterations=2,
            population=8,
            seeds=[rng, rng],
        )
        assert results[0] is not results[1]

    def test_shared_cache_warms_repeated_sweep(self, tiny_plan_module):
        """The second search of a sweep reuses the first one's solutions."""
        a = make_engine(tiny_plan_module)
        b = make_engine(tiny_plan_module)
        cold = b.search(iterations=3, population=12, seed=6)
        swept = DseEngine.search_many(
            [a, b], iterations=3, population=12, seeds=[5, 6]
        )
        assert swept[1].cache_hits > 0
        assert swept[1].evaluations < cold.evaluations
        # Warm cache never changes what the search finds.
        assert swept[1].best_fitness == cold.best_fitness
        assert swept[1].best_config == cold.best_config

    def test_seed_count_mismatch_rejected(self, tiny_plan_module):
        with pytest.raises(ValueError, match="seeds"):
            DseEngine.search_many(
                [make_engine(tiny_plan_module)], seeds=[1, 2]
            )

    def test_seed_fingerprints(self):
        assert seed_fingerprint(7) == ("int", 7)
        assert seed_fingerprint(7) == seed_fingerprint(7)
        assert seed_fingerprint(None) is None
        assert seed_fingerprint(random.Random(7)) is None
        assert seed_fingerprint(True) is None


class TestSweepApi:
    def test_grid_times_out_cases(self):
        flows = sweep_grid(
            networks=[make_tiny_decoder()],
            devices=["Z7045", "ZU17EG"],
            quants=["int8", "int16"],
        )
        assert len(flows) == 4
        assert {f.quant.name for f in flows} == {"int8", "int16"}

    def test_run_sweep_matches_individual_runs(self):
        graph = make_tiny_decoder()
        flows = sweep_grid(
            networks=[graph], devices=["Z7045", "ZU17EG"], quants=["int8"]
        )
        swept = run_sweep(flows, iterations=2, population=8, seed=0)
        assert len(swept) == 2
        solo = flows[0].run(iterations=2, population=8, seed=0)
        assert swept[0].dse.best_fitness == solo.dse.best_fitness
        assert swept[0].dse.best_config == solo.dse.best_config

    def test_run_sweep_dedups_duplicate_flows(self):
        graph = make_tiny_decoder()
        flows = sweep_grid(
            networks=[graph], devices=["Z7045", "Z7045"], quants=["int8"]
        )
        swept = run_sweep(flows, iterations=2, population=8, seed=0)
        assert swept[0].dse is swept[1].dse

    def test_parallel_sweep_matches_serial_sweep(self):
        graph = make_tiny_decoder()
        flows = sweep_grid(
            networks=[graph], devices=["Z7045", "ZU17EG"], quants=["int8"]
        )
        serial = run_sweep(flows, iterations=2, population=8, seed=1)
        parallel = run_sweep(
            flows, iterations=2, population=8, seed=1, workers=2
        )
        for s, p in zip(serial, parallel):
            assert s.dse.best_fitness == p.dse.best_fitness
            assert s.dse.best_config == p.dse.best_config


class TestSweepWorkerPool:
    def test_pool_matches_inline_solutions(self, tiny_plan_module):
        """One long-lived pool returns exactly what inline eval computes."""
        int8 = make_engine(tiny_plan_module, quant=INT8).spec
        int16 = make_engine(tiny_plan_module, quant=INT16).spec
        positions = [[0.5, 0.5] * 3, [0.7, 0.3] * 3]
        with SweepWorkerPool(2) as pool:
            for spec in (int8, int16):
                keys = []
                for pos in positions:
                    keys.extend(candidate_keys(spec, pos))
                unique = list(dict.fromkeys(keys))
                chunks = pool.solve(spec, unique)
                pooled = dict(
                    entry for chunk in chunks for entry in chunk.entries
                )
                assert set(pooled) == set(unique)
                for key, solution in pooled.items():
                    assert solution == solve_bucket(spec, key[1], key[2])

    def test_requires_at_least_one_worker(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepWorkerPool(0)

    def test_search_many_reuses_one_pool(self, tiny_plan_module, monkeypatch):
        """A parallel sweep forks exactly one pool for all of its cases."""
        created: list[SweepWorkerPool] = []
        original_init = SweepWorkerPool.__init__

        def counting_init(self, workers):
            original_init(self, workers)
            created.append(self)

        monkeypatch.setattr(SweepWorkerPool, "__init__", counting_init)
        engines = [
            make_engine(tiny_plan_module, device=device)
            for device in ("Z7045", "ZU17EG", "ZU9CG")
        ]
        results = DseEngine.search_many(
            engines, iterations=2, population=8, seed=0, workers=2
        )
        assert len(results) == 3
        assert len(created) == 1

    def test_callers_cache_is_used_directly(self, tiny_plan_module):
        """workers>1 no longer promotes the cache to a Manager store: the
        caller's local cache IS the authoritative store and ends up warm."""
        engines = [
            make_engine(tiny_plan_module, device=device)
            for device in ("Z7045", "ZU17EG")
        ]
        local = LocalEvalCache()
        pooled = DseEngine.search_many(
            engines, iterations=2, population=8, seed=0,
            workers=2, cache=local,
        )
        assert len(local) > 0, "caller's cache did not receive the deltas"
        serial = DseEngine.search_many(
            engines, iterations=2, population=8, seed=0
        )
        assert [r.best_config for r in pooled] == [
            r.best_config for r in serial
        ]

    def test_pooled_sweep_matches_serial_sweep(self, tiny_plan_module):
        engines = [
            make_engine(tiny_plan_module, device=device)
            for device in ("Z7045", "ZU17EG")
        ]
        serial = DseEngine.search_many(
            engines, iterations=2, population=8, seed=2
        )
        pooled = DseEngine.search_many(
            engines, iterations=2, population=8, seed=2, workers=2
        )
        for s, p in zip(serial, pooled):
            assert s.best_fitness == p.best_fitness
            assert s.best_config == p.best_config
            assert s.history == p.history

    def test_manager_cache_still_works_as_fallback(self, tiny_plan_module):
        """SharedEvalCache remains a valid (if slow) backend choice."""
        engine = make_engine(tiny_plan_module)
        with SharedEvalCache() as cache:
            shared = engine.search(
                iterations=2, population=8, seed=9, cache=cache
            )
            assert len(cache) > 0
        plain = engine.search(iterations=2, population=8, seed=9)
        assert shared.best_fitness == plain.best_fitness
        assert shared.best_config == plain.best_config


class TestResultStats:
    def test_cache_hit_rate_surfaced(self, tiny_plan_module):
        result = make_engine(tiny_plan_module).search(
            iterations=3, population=10, seed=0
        )
        assert result.cache_lookups == result.evaluations + result.cache_hits
        assert 0.0 <= result.bucket_hit_rate <= 1.0
        assert 0.0 <= result.cache_hit_rate <= 1.0
        assert result.stage_lookups > 0
        assert "cache hits" in result.render()

    def test_phase_timings_surfaced(self, tiny_plan_module):
        result = make_engine(tiny_plan_module).search(
            iterations=3, population=10, seed=0
        )
        assert result.eval_seconds > 0
        assert result.cache_seconds > 0
        assert result.overhead_seconds == 0  # serial search: no pool
        assert result.eval_seconds + result.cache_seconds <= (
            result.runtime_seconds + 1e-6
        )
