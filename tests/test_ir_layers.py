"""Tests for IR layer definitions: shapes, MACs, parameters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Linear,
    MaxPool,
    Reshape,
    ShapeError,
    TensorShape,
    Upsample,
    conv_output_size,
    explicit_padding,
)


class TestTensorShape:
    def test_numel(self):
        assert TensorShape(3, 4, 5).numel == 60

    def test_positive_dims_required(self):
        with pytest.raises(ShapeError):
            TensorShape(0, 1, 1)

    def test_as_tuple(self):
        assert TensorShape(1, 2, 3).as_tuple() == (1, 2, 3)


class TestPaddingArithmetic:
    def test_same_stride1_preserves_size(self):
        assert conv_output_size(8, 3, 1, "same") == 8
        assert conv_output_size(8, 4, 1, "same") == 8

    def test_same_with_stride(self):
        assert conv_output_size(224, 7, 2, "same") == 112

    def test_valid(self):
        assert conv_output_size(227, 11, 4, "valid") == 55

    def test_explicit_int_padding(self):
        assert conv_output_size(8, 3, 1, 1) == 8

    def test_window_too_large_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, "valid")

    def test_bad_padding_string(self):
        with pytest.raises(ShapeError):
            conv_output_size(8, 3, 1, "weird")

    def test_explicit_padding_even_kernel_asymmetric(self):
        low, high = explicit_padding(8, 4, 1, "same")
        assert (low, high) == (1, 2)

    @settings(max_examples=100, deadline=None)
    @given(
        size=st.integers(1, 512),
        kernel=st.integers(1, 11),
        stride=st.integers(1, 4),
    )
    def test_same_padding_matches_ceil(self, size, kernel, stride):
        assert conv_output_size(size, kernel, stride, "same") == -(-size // stride)


class TestConv2d:
    def test_shape_inference(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3)
        out = conv.infer_shape((TensorShape(4, 16, 16),))
        assert out == TensorShape(8, 16, 16)

    def test_channel_mismatch_raises(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3)
        with pytest.raises(ShapeError, match="input channels"):
            conv.infer_shape((TensorShape(3, 16, 16),))

    def test_macs(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3)
        out = TensorShape(8, 16, 16)
        assert conv.macs((TensorShape(4, 16, 16),), out) == 8 * 16 * 16 * 4 * 9

    def test_weight_params(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3)
        assert conv.weight_params() == 4 * 8 * 9

    def test_untied_bias_params_scale_with_resolution(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3, bias=BiasMode.UNTIED)
        assert conv.bias_params(TensorShape(8, 16, 16)) == 8 * 256

    def test_tied_bias_params(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3, bias=BiasMode.TIED)
        assert conv.bias_params(TensorShape(8, 16, 16)) == 8

    def test_no_bias(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3, bias=BiasMode.NONE)
        assert conv.bias_params(TensorShape(8, 16, 16)) == 0
        assert conv.elementwise_ops((), TensorShape(8, 16, 16)) == 0

    def test_bias_add_counted_once_per_output(self):
        conv = Conv2d(in_channels=4, out_channels=8, kernel=3)
        assert conv.elementwise_ops((), TensorShape(8, 4, 4)) == 8 * 16

    def test_invalid_params_rejected(self):
        with pytest.raises(ShapeError):
            Conv2d(in_channels=0, out_channels=8, kernel=3)
        with pytest.raises(ShapeError):
            Conv2d(in_channels=1, out_channels=8, kernel=0)


class TestOtherLayers:
    def test_activation_identity_shape(self):
        act = Activation(fn="leaky_relu")
        shape = TensorShape(3, 5, 5)
        assert act.infer_shape((shape,)) == shape
        assert act.elementwise_ops((shape,), shape) == shape.numel

    def test_unknown_activation_rejected(self):
        with pytest.raises(ShapeError):
            Activation(fn="swish")

    def test_upsample_doubles_spatial(self):
        up = Upsample(scale=2)
        assert up.infer_shape((TensorShape(4, 8, 8),)) == TensorShape(4, 16, 16)

    def test_upsample_rejects_bad_mode(self):
        with pytest.raises(ShapeError):
            Upsample(scale=2, mode="bilinear")

    def test_maxpool_default_stride_is_kernel(self):
        pool = MaxPool(kernel=2)
        assert pool.infer_shape((TensorShape(4, 8, 8),)) == TensorShape(4, 4, 4)

    def test_maxpool_overlapping(self):
        pool = MaxPool(kernel=3, stride=2)
        assert pool.infer_shape((TensorShape(96, 55, 55),)) == TensorShape(96, 27, 27)

    def test_linear_requires_matching_features(self):
        fc = Linear(in_features=100, out_features=10)
        assert fc.infer_shape((TensorShape(100, 1, 1),)) == TensorShape(10, 1, 1)
        with pytest.raises(ShapeError):
            fc.infer_shape((TensorShape(10, 2, 4),))

    def test_linear_accepts_matching_numel(self):
        fc = Linear(in_features=100, out_features=10)
        # 4x5x5 = 100 elements also works (implicit flatten by the runtime).
        assert fc.infer_shape((TensorShape(4, 5, 5),)) == TensorShape(10, 1, 1)

    def test_linear_macs_and_params(self):
        fc = Linear(in_features=100, out_features=10)
        out = TensorShape(10, 1, 1)
        assert fc.macs((), out) == 1000
        assert fc.weight_params() == 1000
        assert fc.bias_params(out) == 10

    def test_reshape_preserves_numel(self):
        reshape = Reshape(target=TensorShape(4, 8, 8))
        assert reshape.infer_shape((TensorShape(256, 1, 1),)) == TensorShape(4, 8, 8)
        with pytest.raises(ShapeError):
            reshape.infer_shape((TensorShape(100, 1, 1),))

    def test_flatten(self):
        assert Flatten().infer_shape((TensorShape(4, 3, 2),)) == TensorShape(24, 1, 1)

    def test_concat_channels(self):
        concat = Concat(num_inputs=2)
        out = concat.infer_shape((TensorShape(4, 8, 8), TensorShape(3, 8, 8)))
        assert out == TensorShape(7, 8, 8)

    def test_concat_spatial_mismatch_raises(self):
        concat = Concat(num_inputs=2)
        with pytest.raises(ShapeError):
            concat.infer_shape((TensorShape(4, 8, 8), TensorShape(3, 4, 4)))

    def test_concat_arity(self):
        concat = Concat(num_inputs=3)
        assert concat.arity == 3
        with pytest.raises(ShapeError):
            Concat(num_inputs=1)

    def test_input_layer(self):
        inp = Input(shape=TensorShape(3, 2, 2))
        assert inp.arity == 0
        assert inp.infer_shape(()) == TensorShape(3, 2, 2)

    def test_wrong_arity_raises(self):
        act = Activation(fn="relu")
        with pytest.raises(ShapeError, match="expects 1 input"):
            act.infer_shape((TensorShape(1, 1, 1), TensorShape(1, 1, 1)))
