"""Integration tests: every experiment driver reproduces the paper's shape.

These run the real drivers at reduced search sizes (smaller swarm, fewer
frames) — the mechanisms under test are identical; only the polish of the
found designs differs from the full benchmark runs.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_constants as paper
from repro.experiments.convergence import run_convergence
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig67 import run_fig67
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


@pytest.fixture(scope="module")
def table2():
    return run_table2()


@pytest.fixture(scope="module")
def table5():
    return run_table5(iterations=6, population=40, seed=0)


class TestTable1:
    def test_gop_rows_within_5_percent(self):
        result = run_table1()
        for row in result.rows:
            assert row.gop == pytest.approx(row.paper_gop, rel=0.05)

    def test_unique_totals(self):
        result = run_table1()
        assert result.unique_gop == pytest.approx(
            paper.TABLE1_UNIQUE_GOP, rel=0.05
        )

    def test_render(self):
        assert "Table I" in run_table1().render()


class TestTable2:
    def test_soc_reproduces_paper_band(self, table2):
        assert table2.soc.fps == pytest.approx(
            paper.TABLE2_SOC["fps"], rel=0.15
        )
        assert table2.soc.efficiency == pytest.approx(
            paper.TABLE2_SOC["efficiency"], abs=0.03
        )

    def test_dnnbuilder_flat_and_collapsing(self, table2):
        designs = table2.dnnbuilder
        assert designs[1].fps == pytest.approx(designs[3].fps, rel=0.02)
        assert designs[1].efficiency > designs[2].efficiency > designs[3].efficiency

    def test_hybriddnn_sticks_at_scheme2(self, table2):
        designs = table2.hybriddnn
        assert designs[2].dsp == designs[3].dsp
        assert designs[1].fps < designs[2].fps

    def test_hybriddnn_absolute_fps_close(self, table2):
        assert table2.hybriddnn[1].fps == pytest.approx(12.1, rel=0.15)
        assert table2.hybriddnn[2].fps == pytest.approx(22.0, rel=0.15)

    def test_render(self, table2):
        text = table2.render()
        assert "865 SoC" in text and "HybridDNN" in text


class TestFig3:
    def test_capped_layers_detected(self):
        result = run_fig3()
        # The thin high-resolution output convs saturate pf = InCh x OutCh.
        assert "texture" in result.saturated
        assert len(result.saturated) >= 1

    def test_uncapped_layers_improve_monotonically(self):
        result = run_fig3()
        for layer in result.layer_names:
            if layer in result.saturated:
                continue
            series = [result.latencies[s][layer] for s in sorted(result.latencies)]
            assert series[-1] <= series[0]

    def test_five_layers_reported(self):
        assert len(run_fig3().layer_names) == 5


class TestFig67:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig67(iterations=3, population=20, frames=48, seed=0)

    def test_eight_cases(self, result):
        assert len(result.cases) == 8
        names = {c.benchmark for c in result.cases}
        assert names == set(paper.FIG67_BENCHMARKS)

    def test_fps_errors_single_digit(self, result):
        # The paper reports max 2.89 %; our simulated "board" keeps the
        # error in the same single-digit band.
        assert result.max_fps_error_pct < 10.0

    def test_efficiency_errors_small(self, result):
        assert result.max_efficiency_error_pct < 10.0

    def test_estimates_optimistic_or_close(self, result):
        # The analytical model ignores fill, so it should estimate >= the
        # end-to-end measurement (within noise).
        for case in result.cases:
            assert case.estimated_fps >= case.measured_fps * 0.99

    def test_render(self, result):
        assert "Figs. 6-7" in result.render()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(iterations=6, population=40, cases=(2, 4))

    def test_zu9cg_outperforms_zu17eg(self, result):
        smaller = result.case(2).result.dse.best_perf
        bigger = result.case(4).result.dse.best_perf
        assert bigger.fps >= smaller.fps

    def test_budgets_respected(self, result):
        from repro.devices.fpga import get_device

        for case in result.cases:
            device = get_device(case.device)
            perf = case.result.dse.best_perf
            assert perf.total_dsp <= device.dsp
            assert perf.total_bram <= device.bram_18k

    def test_batch_sizes_follow_customization(self, result):
        for case in result.cases:
            batches = [
                b.batch_size for b in case.result.dse.best_config.branches
            ]
            assert batches == list(paper.TABLE4_BATCH_SIZES)

    def test_vr_target_met_on_zu9cg(self, result):
        """The paper's headline: the ZU9CG design satisfies VR (>= 90 FPS)."""
        perf = result.case(4).result.dse.best_perf
        assert perf.fps >= 90.0

    def test_render(self, result):
        assert "Table IV" in result.render()


class TestTable5:
    def test_fcad_beats_both_baselines(self, table5):
        assert table5.speedup_vs_dnnbuilder > 2.0
        assert table5.speedup_vs_hybriddnn > 1.5

    def test_fcad_efficiency_higher(self, table5):
        assert (
            table5.fcad_int8.efficiency > table5.dnnbuilder.efficiency + 0.3
        )
        assert (
            table5.fcad_int16.efficiency > table5.hybriddnn.efficiency
        )

    def test_same_device_budgets(self, table5):
        from repro.devices.fpga import ZU9CG

        for perf in (
            table5.fcad_int8.dse.best_perf,
            table5.fcad_int16.dse.best_perf,
        ):
            assert perf.total_dsp <= ZU9CG.dsp
        assert table5.dnnbuilder.dsp <= ZU9CG.dsp
        assert table5.hybriddnn.dsp <= ZU9CG.dsp

    def test_8bit_faster_than_16bit(self, table5):
        assert table5.fcad_int8.fps > table5.fcad_int16.fps

    def test_render(self, table5):
        text = table5.render()
        assert "speedup" in text and "F-CAD" in text


class TestConvergence:
    def test_statistics_collected(self):
        result = run_convergence(
            device_name="Z7045",
            quant_name="int8",
            searches=3,
            iterations=6,
            population=20,
        )
        assert len(result.searches) == 3
        assert 1 <= result.avg_iteration <= 6
        assert result.avg_runtime_seconds > 0
        assert result.fitness_spread_pct < 25.0

    def test_render(self):
        result = run_convergence(
            device_name="Z7045",
            quant_name="int8",
            searches=2,
            iterations=4,
            population=15,
        )
        assert "convergence" in result.render()
