"""Objective-layer unit tests: metrics, objectives, factories, the shim."""

from __future__ import annotations

import random
import statistics
import warnings
from types import SimpleNamespace

import pytest

from repro.dse.fitness import fitness_score
from repro.dse.objective import (
    INFEASIBILITY_PENALTY,
    AnalyticalOracle,
    BranchMetrics,
    CompositeObjective,
    PaperObjective,
    ServingOracle,
    SimOracle,
    SloObjective,
    make_objective,
    make_oracle,
    metrics_from_solutions,
    penalized_score,
    resolve_objective,
    resolve_oracle,
)


def analytical(fps, meets=None):
    return BranchMetrics(
        fps=tuple(fps),
        meets_batch=tuple(meets) if meets is not None else (True,) * len(fps),
    )


class TestBranchMetrics:
    def test_serving_fields_default_absent(self):
        metrics = analytical([10.0, 20.0])
        assert metrics.p99_ms is None
        assert metrics.deadline_miss_rate is None
        assert metrics.throughput_fps is None
        assert metrics.oracle == "analytical"

    def test_shortfall_counts_failed_branches(self):
        assert analytical([1.0, 2.0, 3.0], (True, False, False)).shortfall == 2
        assert analytical([1.0], (True,)).shortfall == 0

    def test_from_solutions(self):
        solutions = [
            SimpleNamespace(fps=30.0, meets_batch_target=True),
            SimpleNamespace(fps=90.0, meets_batch_target=False),
        ]
        metrics = metrics_from_solutions(solutions)
        assert metrics.fps == (30.0, 90.0)
        assert metrics.meets_batch == (True, False)


class TestPaperObjective:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            PaperObjective().score(analytical([1.0]), (1.0, 1.0))
        with pytest.raises(ValueError):
            PaperObjective().score(analytical([1.0, 2.0, 3.0]), (1.0, 1.0))

    def test_single_branch_has_zero_variance(self):
        # With one branch there is no imbalance to penalize, no matter
        # how heavy the penalty weight.
        assert PaperObjective(alpha=1e9).score(analytical([42.0]), (2.0,)) == 84.0

    def test_zero_priority_branches_still_count_in_variance(self):
        # A zero-priority branch contributes nothing to the weighted sum
        # but its FPS still unbalances the pipeline.
        score = PaperObjective(alpha=1.0).score(
            analytical([10.0, 30.0]), (0.0, 1.0)
        )
        assert score == 30.0 - statistics.pvariance([10.0, 30.0])
        # All-zero priorities: pure (negative) variance penalty.
        assert PaperObjective(alpha=1.0).score(
            analytical([10.0, 30.0]), (0.0, 0.0)
        ) == -statistics.pvariance([10.0, 30.0])

    def test_bit_identical_to_historical_formula_on_random_inputs(self):
        """PaperObjective is the Sec. VI-B1 fitness, bit for bit."""
        rng = random.Random(0)
        objective_cases = 0
        for _ in range(300):
            n = rng.randint(1, 6)
            fps = [rng.uniform(0.0, 500.0) for _ in range(n)]
            priorities = tuple(rng.uniform(0.0, 4.0) for _ in range(n))
            alpha = rng.choice([0.0, 0.05, 0.5, 5.0, rng.random()])
            # The pre-refactor fitness_score implementation, verbatim.
            weighted = sum(f * p for f, p in zip(fps, priorities))
            variance = statistics.pvariance(fps) if len(fps) > 1 else 0.0
            old = weighted - alpha * variance
            new = PaperObjective(alpha=alpha).score(
                analytical(fps), priorities
            )
            assert new == old
            objective_cases += 1
        assert objective_cases == 300

    def test_bit_identical_to_deprecated_shim(self):
        rng = random.Random(1)
        for _ in range(50):
            n = rng.randint(1, 4)
            fps = [rng.uniform(0.0, 200.0) for _ in range(n)]
            priorities = tuple(rng.uniform(0.5, 2.0) for _ in range(n))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                old = fitness_score(fps, priorities, alpha=0.05)
            assert PaperObjective().score(analytical(fps), priorities) == old

    def test_key_carries_alpha(self):
        assert PaperObjective(alpha=0.5).key != PaperObjective(alpha=0.05).key


class TestDeprecatedShim:
    def test_fitness_score_warns_but_works(self):
        with pytest.warns(DeprecationWarning):
            assert fitness_score([10.0, 20.0], (1.0, 1.0), alpha=0.0) == 30.0

    def test_fitness_score_still_validates_lengths(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                fitness_score([1.0], (1.0, 1.0))


class TestSloObjective:
    def test_scores_serving_metrics(self):
        metrics = BranchMetrics(
            fps=(30.0,),
            meets_batch=(True,),
            oracle="serving",
            p99_ms=12.5,
            deadline_miss_rate=0.1,
            throughput_fps=300.0,
        )
        assert SloObjective(miss_weight=1000.0).score(metrics, (1.0,)) == -(
            12.5 + 1000.0 * 0.1
        )

    def test_lower_p99_scores_higher(self):
        fast = BranchMetrics((30.0,), (True,), "serving", p99_ms=5.0,
                             deadline_miss_rate=0.0)
        slow = BranchMetrics((30.0,), (True,), "serving", p99_ms=40.0,
                             deadline_miss_rate=0.2)
        slo = SloObjective()
        assert slo.score(fast, (1.0,)) > slo.score(slow, (1.0,))

    def test_falls_back_to_paper_proxy_on_analytical_metrics(self):
        metrics = analytical([10.0, 30.0])
        priorities = (1.0, 2.0)
        assert SloObjective(fallback_alpha=0.5).score(
            metrics, priorities
        ) == PaperObjective(alpha=0.5).score(metrics, priorities)


class TestCompositeObjective:
    def test_weights_are_normalized(self):
        metrics = analytical([10.0, 20.0])
        priorities = (1.0, 1.0)
        heavy = CompositeObjective(
            parts=((PaperObjective(), 2.0), (SloObjective(), 2.0))
        )
        light = CompositeObjective(
            parts=((PaperObjective(), 0.5), (SloObjective(), 0.5))
        )
        assert heavy.parts[0][1] == pytest.approx(0.5)
        assert sum(w for _, w in heavy.parts) == pytest.approx(1.0)
        assert heavy.score(metrics, priorities) == pytest.approx(
            light.score(metrics, priorities)
        )

    def test_single_part_scores_like_the_part(self):
        metrics = analytical([15.0, 45.0])
        priorities = (1.0, 1.0)
        composite = CompositeObjective(parts=((PaperObjective(), 7.0),))
        assert composite.parts[0][1] == pytest.approx(1.0)
        assert composite.score(metrics, priorities) == pytest.approx(
            PaperObjective().score(metrics, priorities)
        )

    def test_empty_and_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            CompositeObjective(parts=())
        with pytest.raises(ValueError):
            CompositeObjective(parts=((PaperObjective(), 0.0),))
        with pytest.raises(ValueError):
            CompositeObjective(
                parts=((PaperObjective(), 1.0), (SloObjective(), -2.0))
            )


class TestPenalizedScore:
    def test_subtracts_penalty_per_failed_branch(self):
        metrics = analytical([10.0, 20.0], (False, False))
        raw = PaperObjective().score(metrics, (1.0, 1.0))
        assert penalized_score(
            PaperObjective(), metrics, (1.0, 1.0)
        ) == raw - 2 * INFEASIBILITY_PENALTY


class TestFactories:
    def test_make_objective_names(self):
        assert isinstance(make_objective("paper"), PaperObjective)
        assert isinstance(make_objective("slo"), SloObjective)
        assert isinstance(make_objective("composite"), CompositeObjective)
        with pytest.raises(ValueError):
            make_objective("nope")

    def test_make_objective_threads_alpha(self):
        assert make_objective("paper", alpha=0.7).alpha == 0.7
        assert make_objective("slo", alpha=0.7).fallback_alpha == 0.7

    def test_make_oracle_names(self):
        assert make_oracle("none") is None
        assert isinstance(make_oracle("analytical"), AnalyticalOracle)
        assert isinstance(make_oracle("sim"), SimOracle)
        assert isinstance(make_oracle("serving"), ServingOracle)
        with pytest.raises(ValueError):
            make_oracle("quantum")

    def test_resolvers_pass_instances_through(self):
        paper = PaperObjective(alpha=0.2)
        assert resolve_objective(paper) is paper
        assert resolve_objective(None, alpha=0.3).alpha == 0.3
        assert resolve_objective("slo").name == "slo"
        oracle = SimOracle()
        assert resolve_oracle(oracle) is oracle
        assert resolve_oracle(None) is None
        assert resolve_oracle("none") is None

    def test_oracle_keys_distinguish_parameters(self):
        assert SimOracle(frames=6).key != SimOracle(frames=8).key
        assert (
            ServingOracle(avatars=16).key != ServingOracle(avatars=32).key
        )
