"""Tests for layer fusion — the Construction step's first half."""

from __future__ import annotations

import pytest

from repro.construction.fusion import FusionError, fuse_graph
from repro.ir.builder import GraphBuilder
from repro.ir.layer import TensorShape
from repro.profiler.network import profile_network
from tests.conftest import make_tiny_decoder


class TestDecoderFusion:
    def test_every_cau_block_is_one_stage(self, decoder_graph):
        stages = fuse_graph(decoder_graph)
        # 6 (Br.1) + 8 (shared + Br.2) + 1 (Br.3) conv stages.
        assert len(stages) == 15
        assert all(s.kind == "conv" for s in stages)

    def test_upsample_folds_into_consumer(self, decoder_graph):
        stages = {s.name: s for s in fuse_graph(decoder_graph)}
        assert stages["conv1"].upsample_in == 1  # first conv: no upsample
        assert stages["conv2"].upsample_in == 2  # after the first CAU block
        assert stages["texture"].upsample_in == 2

    def test_fork_consumers_share_the_folded_upsample(self, decoder_graph):
        stages = {s.name: s for s in fuse_graph(decoder_graph)}
        # Both Br.2's conv11 and Br.3's warp conv read the shared front's
        # pre-upsample tensor (32x128x128) and fold the 2x upsample.
        assert stages["conv11"].sources == ("conv10",)
        assert stages["warp_field"].sources == ("conv10",)
        assert stages["warp_field"].upsample_in == 2

    def test_no_intermediate_hd_tensor_is_materialized(self, decoder_graph):
        # The 16x1024x1024 map exists only as the texture conv's virtual
        # input: the producing stage outputs 16x512x512.
        stages = {s.name: s for s in fuse_graph(decoder_graph)}
        texture = stages["texture"]
        assert texture.conv_height == 1024
        assert texture.input_elements == 16 * 512 * 512

    def test_activation_is_attached(self, decoder_graph):
        stages = {s.name: s for s in fuse_graph(decoder_graph)}
        assert stages["conv1"].activation == "leaky_relu"
        assert stages["texture"].activation is None  # output conv is bare

    def test_macs_preserved_by_fusion(self, decoder_graph):
        profile = profile_network(decoder_graph)
        stages = fuse_graph(decoder_graph)
        assert sum(s.macs for s in stages) == profile.total_macs

    def test_params_preserved_by_fusion(self, decoder_graph):
        profile = profile_network(decoder_graph)
        stages = fuse_graph(decoder_graph)
        assert sum(s.params for s in stages) == profile.total_params

    def test_concat_inputs_counted(self, decoder_graph):
        stages = {s.name: s for s in fuse_graph(decoder_graph)}
        front = stages["conv6"]
        assert set(front.sources) == {"z", "view"}
        assert front.input_elements == 256 + 3 * 8 * 8
        assert front.external_input_elements == front.input_elements

    def test_internal_inputs_not_external(self, decoder_graph):
        stages = {s.name: s for s in fuse_graph(decoder_graph)}
        assert stages["conv2"].external_input_elements == 0


class TestBenchmarkFusion:
    def test_alexnet_pool_folds_backward(self, alexnet_graph):
        stages = {s.name: s for s in fuse_graph(alexnet_graph)}
        conv1 = stages["conv1"]
        assert conv1.conv_height == 55  # compute grid
        assert conv1.out_height == 27  # post-pool stage output
        assert conv1.activation == "relu"

    def test_alexnet_fc_stages(self, alexnet_graph):
        stages = {s.name: s for s in fuse_graph(alexnet_graph)}
        fc1 = stages["fc1"]
        assert fc1.kind == "linear"
        assert fc1.in_channels == 256 * 6 * 6
        assert fc1.out_channels == 4096
        assert fc1.conv_height == 1

    def test_vgg16_stage_count(self, vgg16_graph):
        stages = fuse_graph(vgg16_graph)
        assert len(stages) == 16  # 13 convs + 3 FCs

    def test_max_parallelism_caps(self, alexnet_graph):
        stages = {s.name: s for s in fuse_graph(alexnet_graph)}
        conv1 = stages["conv1"]
        assert conv1.cpf_max == 3
        assert conv1.kpf_max == 96
        assert conv1.h_max == 55
        assert conv1.max_parallelism == 3 * 96 * 55


class TestFusionErrors:
    def test_graph_without_compute_rejected(self):
        b = GraphBuilder("none")
        x = b.input("x", TensorShape(2, 4, 4))
        b.act(x, fn="relu")
        with pytest.raises(FusionError, match="no conv/linear"):
            fuse_graph(b.graph)

    def test_stage_ops_property(self):
        stages = fuse_graph(make_tiny_decoder())
        for stage in stages:
            assert stage.ops == 2 * stage.macs
