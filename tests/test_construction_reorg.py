"""Tests for branch separation and layer reorganization."""

from __future__ import annotations

import pytest

from repro.construction.reorg import build_pipeline_plan
from tests.conftest import make_chain, make_tiny_decoder


class TestDecoderReorg:
    def test_shared_front_assigned_to_texture_branch(self, decoder_plan):
        """The paper: shared layers go to Br.2, the most demanding flow."""
        geometry, texture, warp = decoder_plan.branches
        shared = [s for s in texture.stages if s.shared]
        assert len(shared) == 5  # the five shared CAU blocks
        assert not any(s.shared for s in geometry.stages)
        assert not any(s.shared for s in warp.stages)

    def test_stage_counts(self, decoder_plan):
        assert [b.num_stages for b in decoder_plan.branches] == [6, 8, 1]

    def test_branch_ops_match_paper_rows(self, decoder_plan):
        # After reassignment Br.2 carries shared + own ops.
        ops = [b.ops / 1e9 for b in decoder_plan.branches]
        assert ops[0] == pytest.approx(1.9, rel=0.05)
        assert ops[1] == pytest.approx(11.3, rel=0.05)
        assert ops[2] == pytest.approx(0.41, rel=0.1)  # warp conv only

    def test_indices_are_sequential(self, decoder_plan):
        for branch in decoder_plan.branches:
            assert [s.index for s in branch.stages] == list(
                range(branch.num_stages)
            )
            assert all(s.branch == branch.index for s in branch.stages)

    def test_warp_branch_reads_from_texture_branch(self, decoder_plan):
        warp = decoder_plan.branches[2].stages[0]
        texture_names = {s.name for s in decoder_plan.branches[1].stages}
        assert set(warp.stage.sources) <= texture_names

    def test_consumers_query(self, decoder_plan):
        consumers = decoder_plan.consumers("conv10")
        names = {c.name for c in consumers}
        assert names == {"conv11", "warp_field"}

    def test_stage_by_name(self, decoder_plan):
        assert decoder_plan.stage_by_name("texture").branch == 1
        with pytest.raises(KeyError):
            decoder_plan.stage_by_name("nope")

    def test_total_ops(self, decoder_plan):
        assert decoder_plan.total_ops == sum(
            b.ops for b in decoder_plan.branches
        )


class TestGenericReorg:
    def test_single_branch_chain(self):
        plan = build_pipeline_plan(make_chain(depth=4))
        assert plan.num_branches == 1
        assert plan.branches[0].num_stages == 4

    def test_tiny_decoder_two_branches(self):
        plan = build_pipeline_plan(make_tiny_decoder())
        assert plan.num_branches == 2
        big, small = plan.branches
        assert big.ops > small.ops
        assert any(s.shared for s in big.stages)
        assert small.num_stages == 1

    def test_all_stages_enumerated_once(self, decoder_plan):
        names = [s.name for s in decoder_plan.all_stages()]
        assert len(names) == len(set(names)) == 15
