"""Golden regression values.

These pin the *deterministic* reproduced numbers (analytic models, no
stochastic search involved) so refactors of the profiler, fusion, resource
or baseline models cannot silently shift the results recorded in
EXPERIMENTS.md. Tolerances are tight on purpose: a legitimate model change
should update both the constant here and the EXPERIMENTS.md table.
"""

from __future__ import annotations

import pytest

from repro.arch.config import StageConfig
from repro.baselines.dnnbuilder import DnnBuilderModel
from repro.baselines.hybriddnn import HybridDnnModel
from repro.baselines.soc import SocModel
from repro.devices.fpga import get_device
from repro.dse.space import get_pf
from repro.perf.analytical import stage_latency_cycles
from repro.profiler.network import profile_network
from repro.quant.schemes import INT8, INT16


class TestGoldenDecoderProfile:
    """EXPERIMENTS.md, Table I column 'measured'."""

    def test_branch_gop(self, decoder_graph):
        profile = profile_network(decoder_graph)
        gop = [b.ops / 1e9 for b in profile.branches]
        assert gop[0] == pytest.approx(1.902, abs=0.005)
        assert gop[1] == pytest.approx(11.364, abs=0.005)
        assert gop[2] == pytest.approx(4.913, abs=0.005)

    def test_unique_totals(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert profile.total_ops / 1e9 == pytest.approx(13.675, abs=0.01)
        assert profile.total_params / 1e6 == pytest.approx(9.96, abs=0.05)

    def test_shared_front(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert profile.branches[1].shared_ops / 1e9 == pytest.approx(
            4.504, abs=0.005
        )


class TestGoldenBaselines:
    """EXPERIMENTS.md, Table II column 'measured'."""

    def test_soc(self, mimic_graph):
        design = SocModel().design(mimic_graph, INT8)
        assert design.fps == pytest.approx(33.9, abs=0.3)
        assert design.efficiency == pytest.approx(0.161, abs=0.005)

    def test_dnnbuilder_flat_level(self, mimic_plan):
        for device in ("Z7045", "ZU17EG", "ZU9CG"):
            design = DnnBuilderModel().design(
                mimic_plan, get_device(device).budget(), INT8
            )
            assert design.fps == pytest.approx(11.9, abs=0.1), device

    def test_dnnbuilder_bottleneck_latency(self, mimic_plan):
        design = DnnBuilderModel().design(
            mimic_plan, get_device("ZU9CG").budget(), INT8
        )
        assert design.layer_latency_ms["texture"] == pytest.approx(
            83.89, abs=0.05
        )
        assert design.layer_latency_ms["conv12"] == pytest.approx(
            20.97, abs=0.05
        )

    def test_hybriddnn(self, mimic_plan):
        values = {
            "Z7045": (512, 576, 11.5),
            "ZU17EG": (1024, 1120, 22.6),
            "ZU9CG": (1024, 1120, 22.6),
        }
        for device, (dsp, bram, fps) in values.items():
            design = HybridDnnModel().design(
                mimic_plan, get_device(device).budget(), INT16
            )
            assert design.dsp == dsp, device
            assert design.bram == bram, device
            assert design.fps == pytest.approx(fps, abs=0.2), device


class TestGoldenLatencyModel:
    """Eq. 4 on the decoder's signature stages."""

    def test_texture_conv_serial(self, decoder_plan):
        texture = decoder_plan.stage_by_name("texture").stage
        # 3 x 16 x 1024 x 1024 x 16 MACs.
        assert stage_latency_cycles(texture, StageConfig()) == 805_306_368

    def test_texture_conv_full_3d(self, decoder_plan):
        texture = decoder_plan.stage_by_name("texture").stage
        cfg = StageConfig(cpf=16, kpf=3, h=4)
        assert stage_latency_cycles(texture, cfg) == 256 * 1024 * 16

    def test_getpf_ladder_snapshot(self, decoder_plan):
        texture = decoder_plan.stage_by_name("texture").stage
        assert get_pf(texture, 48) == StageConfig(cpf=16, kpf=3, h=1)
        assert get_pf(texture, 4 * 48) == StageConfig(cpf=16, kpf=3, h=4)
        conv12 = decoder_plan.stage_by_name("conv12").stage
        assert get_pf(conv12, 416).pf == 416  # 26 x 16 snap-to-cap


class TestGoldenFusion:
    """Construction-step structure of the reference decoder."""

    def test_stage_partition(self, decoder_plan):
        assert [b.num_stages for b in decoder_plan.branches] == [6, 8, 1]

    def test_texture_stage_geometry(self, decoder_plan):
        texture = decoder_plan.stage_by_name("texture").stage
        assert texture.conv_height == 1024
        assert texture.upsample_in == 2
        assert texture.input_elements == 16 * 512 * 512
        assert texture.macs == 805_306_368  # 3 x 16 x 1024^2 x 4^2
