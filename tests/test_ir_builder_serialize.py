"""Tests for the graph builder and JSON serialization."""

from __future__ import annotations

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.graph import GraphError
from repro.ir.layer import BiasMode, Conv2d, TensorShape
from repro.ir.serialize import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)


class TestBuilder:
    def test_auto_naming_increments(self):
        b = GraphBuilder()
        x = b.input("x", TensorShape(3, 8, 8))
        c1 = b.conv(x, 4, 3)
        c2 = b.conv(c1, 4, 3)
        assert (c1, c2) == ("conv1", "conv2")

    def test_explicit_names_win(self):
        b = GraphBuilder()
        x = b.input("x", TensorShape(3, 8, 8))
        out = b.conv(x, 4, 3, name="head")
        assert out == "head"

    def test_conv_infers_in_channels(self):
        b = GraphBuilder()
        x = b.input("x", TensorShape(3, 8, 8))
        c = b.conv(x, 4, 3)
        layer = b.graph.node(c).layer
        assert isinstance(layer, Conv2d)
        assert layer.in_channels == 3

    def test_linear_infers_in_features(self):
        b = GraphBuilder()
        x = b.input("x", TensorShape(4, 2, 2))
        f = b.flatten(x)
        fc = b.linear(f, 10)
        assert b.graph.node(fc).layer.in_features == 16

    def test_cau_block_is_three_nodes(self):
        b = GraphBuilder()
        x = b.input("x", TensorShape(4, 8, 8))
        out = b.cau_block(x, out_channels=8)
        graph = b.graph
        assert len(graph) == 4  # input + conv + act + upsample
        assert graph.infer_shapes()[out] == TensorShape(8, 16, 16)

    def test_concat_of_three(self):
        b = GraphBuilder()
        xs = [b.input(f"x{i}", TensorShape(2, 4, 4)) for i in range(3)]
        cat = b.concat(xs)
        assert b.graph.infer_shapes()[cat] == TensorShape(6, 4, 4)


class TestSerialization:
    def test_roundtrip_dict(self, decoder_graph):
        data = graph_to_dict(decoder_graph)
        rebuilt = graph_from_dict(data)
        assert rebuilt.node_names() == decoder_graph.node_names()
        for node in decoder_graph.nodes():
            other = rebuilt.node(node.name)
            assert other.layer == node.layer
            assert other.inputs == node.inputs

    def test_roundtrip_json_text(self, tiny_decoder):
        text = graph_to_json(tiny_decoder)
        rebuilt = graph_from_json(text)
        assert rebuilt.infer_shapes() == tiny_decoder.infer_shapes()

    def test_bias_mode_survives(self, tiny_decoder):
        rebuilt = graph_from_json(graph_to_json(tiny_decoder))
        texture = rebuilt.node("texture").layer
        assert texture.bias is BiasMode.UNTIED

    def test_unknown_layer_type_rejected(self):
        data = {
            "version": 1,
            "name": "bad",
            "nodes": [
                {"name": "x", "inputs": [], "layer": {"type": "Mystery"}}
            ],
        }
        with pytest.raises(GraphError, match="unknown layer type"):
            graph_from_dict(data)

    def test_version_checked(self):
        with pytest.raises(GraphError, match="version"):
            graph_from_dict({"version": 99, "nodes": []})

    def test_serialized_form_is_plain_json(self, tiny_decoder):
        import json

        json.loads(graph_to_json(tiny_decoder))  # must not raise
