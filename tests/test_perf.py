"""Tests for the analytical performance and resource models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import AcceleratorConfig, BranchConfig, StageConfig
from repro.construction.fusion import fuse_graph
from repro.perf.analytical import (
    branch_fps,
    efficiency,
    stage_latency_cycles,
)
from repro.perf.estimator import evaluate, evaluate_branch
from repro.perf.resources import (
    WEIGHT_RESIDENT_CAP_BITS,
    dsp_usage,
    input_buffer_brams,
    stage_resources,
    stage_stream_bytes,
    weight_buffer_brams,
    weights_resident,
)
from repro.quant.schemes import INT8, INT16
from tests.conftest import make_chain


@pytest.fixture(scope="module")
def decoder_stages(decoder_plan):
    return {s.name: s.stage for s in decoder_plan.all_stages()}


class TestLatencyModel:
    def test_eq4_exact_for_dividing_factors(self, decoder_stages):
        stage = decoder_stages["conv2"]  # 128 -> 128 @ 16x16, k=4
        cfg = StageConfig(cpf=8, kpf=16, h=4)
        expected = (128 // 16) * (128 // 8) * (16 // 4) * 16 * 16
        assert stage_latency_cycles(stage, cfg) == expected

    def test_full_parallelism_reaches_wk2(self, decoder_stages):
        stage = decoder_stages["conv2"]
        cfg = StageConfig(cpf=128, kpf=128, h=16)
        assert stage_latency_cycles(stage, cfg) == 16 * 16  # W x K^2

    def test_serial_config_equals_macs(self, decoder_stages):
        stage = decoder_stages["conv2"]
        assert stage_latency_cycles(stage, StageConfig()) == stage.macs

    def test_ceiling_for_non_dividing(self, decoder_stages):
        stage = decoder_stages["conv11"]  # 32 -> 26
        lat = stage_latency_cycles(stage, StageConfig(cpf=32, kpf=4, h=1))
        assert lat == 7 * 1 * 256 * 256 * 16  # ceil(26/4) = 7

    @settings(max_examples=60, deadline=None)
    @given(
        cpf=st.sampled_from([1, 2, 4, 8, 16]),
        kpf=st.sampled_from([1, 2, 4, 8, 16]),
        h=st.sampled_from([1, 2, 4, 8]),
    )
    def test_latency_monotone_in_parallelism(
        self, decoder_plan, cpf, kpf, h
    ):
        stage = decoder_plan.branches[1].stages[4].stage
        base = stage_latency_cycles(stage, StageConfig(cpf, kpf, h))
        for grown in (
            StageConfig(min(2 * cpf, 104), kpf, h),
            StageConfig(cpf, min(2 * kpf, 32), h),
            StageConfig(cpf, kpf, 2 * h),
        ):
            assert stage_latency_cycles(stage, grown) <= base

    def test_branch_fps_eq5(self):
        # 200 MHz, bottleneck 2 M cycles, batch 2 -> 200 FPS.
        assert branch_fps([1_000_000, 2_000_000], 2, 200.0) == pytest.approx(200.0)

    def test_branch_fps_zero_batch(self):
        assert branch_fps([100], 0, 200.0) == 0.0

    def test_efficiency_eq3(self):
        # 100 GOPS on 250 DSPs at 200 MHz, 8-bit: peak = 4*250*0.2 = 200.
        assert efficiency(100.0, 4, 250, 200.0) == pytest.approx(0.5)

    def test_efficiency_zero_multipliers(self):
        assert efficiency(100.0, 4, 0, 200.0) == 0.0


class TestResourceModel:
    def test_int8_packs_two_macs_per_dsp(self):
        assert dsp_usage(StageConfig(cpf=4, kpf=4, h=1), INT8) == 8
        assert dsp_usage(StageConfig(cpf=4, kpf=4, h=1), INT16) == 16

    def test_odd_mac_count_rounds_up(self):
        assert dsp_usage(StageConfig(cpf=3, kpf=1, h=1), INT8) == 2

    def test_small_weights_resident(self, decoder_stages):
        stage = decoder_stages["conv1"]  # 4x128x16 weights
        assert weights_resident(stage, INT8)
        blocks, resident = weight_buffer_brams(stage, StageConfig(), INT8)
        assert resident
        assert blocks >= 1

    def test_large_weights_streamed(self, decoder_stages):
        stage = decoder_stages["conv7"]  # 256x160x16 weights @ 8 bit > cap
        assert not weights_resident(stage, INT8)
        blocks, resident = weight_buffer_brams(stage, StageConfig(), INT8)
        assert not resident

    def test_residency_cap_boundary(self, decoder_stages):
        for name, stage in decoder_stages.items():
            bits = stage.weight_params * 8
            if not stage.untied_bias:
                bits += stage.bias_params * 8
            assert weights_resident(stage, INT8) == (
                bits <= WEIGHT_RESIDENT_CAP_BITS
            ), name

    def test_port_width_floors_bram(self, decoder_stages):
        stage = decoder_stages["conv5"]
        wide = StageConfig(cpf=32, kpf=16, h=1)
        blocks, _ = weight_buffer_brams(stage, wide, INT8)
        # 512 weights x 8 bit / 36-bit ports -> at least 114 blocks.
        assert blocks >= (32 * 16 * 8) // 36

    def test_input_buffer_scales_with_parallel_reads(self, decoder_stages):
        stage = decoder_stages["conv12"]
        narrow = input_buffer_brams(stage, StageConfig(), INT8)
        wide = input_buffer_brams(stage, StageConfig(cpf=16, kpf=1, h=16), INT8)
        assert wide >= narrow

    def test_untied_bias_streams(self, decoder_stages):
        stage = decoder_stages["conv11"]  # untied bias at 256x256
        stream = stage_stream_bytes(stage, INT8)
        assert stream >= stage.bias_params  # one byte per bias at int8

    def test_tied_small_conv_streams_nothing(self):
        plan_stage = fuse_graph(make_chain(depth=1, channels=4))[0]
        assert stage_stream_bytes(plan_stage, INT8) == 0.0

    def test_resources_scale_with_replicas(self, decoder_stages):
        stage = decoder_stages["conv2"]
        res = stage_resources(stage, StageConfig(cpf=4, kpf=4), INT8)
        doubled = res.scaled(2)
        assert doubled.dsp == 2 * res.dsp
        assert doubled.bram == 2 * res.bram
        # Streaming is per frame, independent of replica count.
        assert doubled.stream_bytes_per_frame == res.stream_bytes_per_frame

    def test_16bit_needs_more_memory(self, decoder_stages):
        stage = decoder_stages["conv5"]
        cfg = StageConfig(cpf=8, kpf=8)
        assert (
            stage_resources(stage, cfg, INT16).bram
            >= stage_resources(stage, cfg, INT8).bram
        )


class TestEstimator:
    def test_branch_perf_consistency(self, decoder_plan):
        pipeline = decoder_plan.branches[0]
        cfg = BranchConfig(
            batch_size=1,
            stages=tuple(StageConfig(cpf=2, kpf=2) for _ in pipeline.stages),
        )
        perf = evaluate_branch(pipeline, cfg, INT8, 200.0)
        slowest = max(s.latency_cycles for s in perf.stages)
        assert perf.fps == pytest.approx(200e6 / slowest)
        assert perf.bottleneck_stage in {s.name for s in perf.stages}
        assert 0 < perf.efficiency <= 1.0

    def test_batch_scales_fps_and_resources(self, decoder_plan):
        pipeline = decoder_plan.branches[0]
        stages = tuple(StageConfig(cpf=2, kpf=2) for _ in pipeline.stages)
        one = evaluate_branch(pipeline, BranchConfig(1, stages), INT8, 200.0)
        two = evaluate_branch(pipeline, BranchConfig(2, stages), INT8, 200.0)
        assert two.fps == pytest.approx(2 * one.fps)
        assert two.dsp == 2 * one.dsp
        assert two.efficiency == pytest.approx(one.efficiency)

    def test_accelerator_perf_totals(self, decoder_plan):
        config = AcceleratorConfig.uniform(decoder_plan)
        perf = evaluate(decoder_plan, config, INT8, 200.0)
        assert perf.total_dsp == sum(b.dsp for b in perf.branches)
        assert perf.fps == min(b.fps for b in perf.branches)
        assert perf.quant_name == "int8"

    def test_fits_budget(self, decoder_plan):
        from repro.devices.budget import ResourceBudget

        config = AcceleratorConfig.uniform(decoder_plan)
        perf = evaluate(decoder_plan, config, INT8, 200.0)
        assert perf.fits(ResourceBudget(10_000, 10_000, 100.0))
        assert not perf.fits(ResourceBudget(1, 1, 0.0))

    def test_invalid_config_rejected(self, decoder_plan, tiny_plan):
        config = AcceleratorConfig.uniform(tiny_plan)
        with pytest.raises(Exception):
            evaluate(decoder_plan, config, INT8, 200.0)

    def test_latency_ms_property(self, decoder_plan):
        pipeline = decoder_plan.branches[2]
        cfg = BranchConfig(batch_size=1, stages=(StageConfig(),))
        perf = evaluate_branch(pipeline, cfg, INT8, 200.0)
        assert perf.latency_ms == pytest.approx(1000.0 / perf.fps)
