"""Tests for the numpy runtime: kernels and graph execution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import GraphBuilder
from repro.ir.layer import BiasMode, TensorShape
from repro.quant.schemes import INT8, INT16
from repro.runtime.executor import Executor, init_parameters, run_graph
from repro.runtime.ops import (
    apply_activation,
    conv2d,
    linear,
    maxpool2d,
    upsample_nearest,
)
from tests.conftest import make_tiny_decoder


def reference_conv2d(x, w, stride, pad_top, pad_left, out_h, out_w):
    """Naive quadruple-loop convolution used as ground truth."""
    out_c, in_c, k, _ = w.shape
    out = np.zeros((out_c, out_h, out_w))
    for o in range(out_c):
        for i in range(out_h):
            for j in range(out_w):
                acc = 0.0
                for c in range(in_c):
                    for ky in range(k):
                        for kx in range(k):
                            y = i * stride + ky - pad_top
                            xx = j * stride + kx - pad_left
                            if 0 <= y < x.shape[1] and 0 <= xx < x.shape[2]:
                                acc += w[o, c, ky, kx] * x[c, y, xx]
                out[o, i, j] = acc
    return out


class TestConv2d:
    def test_matches_naive_reference_same_padding(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        got = conv2d(x, w, stride=1, padding="same")
        want = reference_conv2d(x, w, 1, 1, 1, 6, 6)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_matches_naive_reference_valid_stride2(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 9, 9))
        w = rng.normal(size=(3, 2, 3, 3))
        got = conv2d(x, w, stride=2, padding="valid")
        want = reference_conv2d(x, w, 2, 0, 0, 4, 4)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_even_kernel_same_padding(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 8, 8))
        w = rng.normal(size=(2, 2, 4, 4))
        got = conv2d(x, w, stride=1, padding="same")
        # TF-style SAME for even kernels pads (1, 2).
        want = reference_conv2d(x, w, 1, 1, 1, 8, 8)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_tied_bias(self):
        x = np.zeros((1, 2, 2))
        w = np.zeros((3, 1, 1, 1))
        out = conv2d(x, w, bias=np.array([1.0, 2.0, 3.0]))
        assert out[1].flatten().tolist() == [2.0] * 4

    def test_untied_bias(self):
        x = np.zeros((1, 2, 2))
        w = np.zeros((1, 1, 1, 1))
        bias = np.arange(4.0).reshape(1, 2, 2)
        np.testing.assert_array_equal(conv2d(x, w, bias=bias), bias)

    def test_untied_bias_shape_checked(self):
        with pytest.raises(ValueError, match="untied bias"):
            conv2d(
                np.zeros((1, 2, 2)),
                np.zeros((1, 1, 1, 1)),
                bias=np.zeros((1, 3, 3)),
            )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            conv2d(np.zeros((2, 4, 4)), np.zeros((1, 3, 3, 3)))

    def test_rectangular_kernel_rejected(self):
        with pytest.raises(ValueError, match="square"):
            conv2d(np.zeros((1, 4, 4)), np.zeros((1, 1, 2, 3)))


class TestOtherOps:
    def test_maxpool_basic(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        assert maxpool2d(x, 2, 2).item() == 4.0

    def test_maxpool_overlap(self):
        x = np.arange(25.0).reshape(1, 5, 5)
        out = maxpool2d(x, 3, 2)
        assert out.shape == (1, 2, 2)
        assert out[0, 1, 1] == 24.0

    def test_upsample_nearest(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        out = upsample_nearest(x, 2)
        assert out.shape == (1, 4, 4)
        assert out[0, 0, 1] == 1.0
        assert out[0, 3, 3] == 4.0

    def test_linear(self):
        x = np.array([1.0, 2.0]).reshape(2, 1, 1)
        w = np.array([[1.0, 1.0], [0.0, 1.0]])
        out = linear(x, w, bias=np.array([0.0, 10.0]))
        assert out.flatten().tolist() == [3.0, 12.0]

    def test_activations(self):
        x = np.array([-2.0, 0.0, 2.0])
        np.testing.assert_array_equal(
            apply_activation(x, "relu"), [0.0, 0.0, 2.0]
        )
        np.testing.assert_allclose(
            apply_activation(x, "leaky_relu", 0.1), [-0.2, 0.0, 2.0]
        )
        np.testing.assert_allclose(apply_activation(x, "tanh"), np.tanh(x))
        np.testing.assert_allclose(
            apply_activation(x, "sigmoid"), 1 / (1 + np.exp(-x))
        )
        np.testing.assert_array_equal(apply_activation(x, "identity"), x)
        with pytest.raises(ValueError):
            apply_activation(x, "gelu")


class TestExecutor:
    def test_shapes_match_ir_inference(self):
        graph = make_tiny_decoder()
        executor = Executor(graph, seed=0)
        rng = np.random.default_rng(0)
        values = executor.run({"z": rng.normal(size=(8, 4, 4))})
        for name, shape in graph.infer_shapes().items():
            assert values[name].shape == shape.as_tuple(), name

    def test_outputs_only(self):
        graph = make_tiny_decoder()
        outputs = run_graph(
            graph, {"z": np.zeros((8, 4, 4))}, seed=0
        )
        assert set(outputs) == {"texture", "warp"}

    def test_missing_input_raises(self):
        graph = make_tiny_decoder()
        with pytest.raises(KeyError, match="missing inputs"):
            Executor(graph).run({})

    def test_wrong_input_shape_raises(self):
        graph = make_tiny_decoder()
        with pytest.raises(ValueError, match="shape"):
            Executor(graph).run({"z": np.zeros((1, 1, 1))})

    def test_deterministic_with_seed(self):
        graph = make_tiny_decoder()
        z = np.ones((8, 4, 4))
        a = run_graph(graph, {"z": z}, seed=42)
        b = run_graph(graph, {"z": z}, seed=42)
        np.testing.assert_array_equal(a["texture"], b["texture"])

    def test_quantized_execution_close_to_float(self):
        graph = make_tiny_decoder()
        rng = np.random.default_rng(1)
        z = rng.normal(size=(8, 4, 4))
        params = init_parameters(graph, seed=0)
        exact = run_graph(graph, {"z": z}, params=params)
        q16 = run_graph(graph, {"z": z}, params=params, quant=INT16)
        q8 = run_graph(graph, {"z": z}, params=params, quant=INT8)
        scale = np.max(np.abs(exact["texture"])) + 1e-9
        err16 = np.max(np.abs(q16["texture"] - exact["texture"])) / scale
        err8 = np.max(np.abs(q8["texture"] - exact["texture"])) / scale
        assert err16 < err8 < 0.2

    def test_untied_bias_parameters_have_full_shape(self, decoder_graph):
        params = init_parameters(decoder_graph, seed=0)
        shapes = decoder_graph.infer_shapes()
        bias = params["conv1"]["bias"]
        assert bias.shape == shapes["conv1"].as_tuple()

    @settings(max_examples=20, deadline=None)
    @given(
        channels=st.integers(1, 6),
        size=st.sampled_from([4, 6, 8]),
        kernel=st.sampled_from([1, 2, 3, 4]),
        stride=st.sampled_from([1, 2]),
        padding=st.sampled_from(["same", "valid"]),
    )
    def test_runtime_agrees_with_shape_inference(
        self, channels, size, kernel, stride, padding
    ):
        if padding == "valid" and size < kernel:
            return
        b = GraphBuilder("prop")
        x = b.input("x", TensorShape(2, size, size))
        c = b.conv(
            x,
            out_channels=channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            bias=BiasMode.UNTIED,
        )
        graph = b.graph
        expected = graph.infer_shapes()[c]
        values = Executor(graph, seed=0).run(
            {"x": np.zeros((2, size, size))}
        )
        assert values[c].shape == expected.as_tuple()
