"""Tests for the model zoo — Table I invariants and benchmark networks."""

from __future__ import annotations

import pytest

from repro.ir.layer import BiasMode, Conv2d
from repro.models.codec_avatar import (
    DecoderPlan,
    UNTIED_BIAS_MAX_PIXELS,
    build_codec_avatar_decoder,
)
from repro.models.zoo import get_model, list_models
from repro.profiler.network import profile_network
from repro.utils.units import GIGA


class TestDecoderTableI:
    """The reference decoder must reproduce the paper's Table I."""

    def test_three_branches(self, decoder_graph):
        assert decoder_graph.output_names() == [
            "geometry",
            "texture",
            "warp_field",
        ]

    def test_branch_gop_matches_paper(self, decoder_graph):
        profile = profile_network(decoder_graph)
        targets = (1.9, 11.3, 4.9)
        for branch, target in zip(profile.branches, targets):
            assert branch.ops / GIGA == pytest.approx(target, rel=0.05)

    def test_unique_gop_close_to_13_6(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert profile.total_ops / GIGA == pytest.approx(13.6, rel=0.05)

    def test_gop_shares_match_paper(self, decoder_graph):
        profile = profile_network(decoder_graph)
        total = profile.sum_of_branch_ops
        shares = [b.ops / total for b in profile.branches]
        for share, target in zip(shares, (0.105, 0.624, 0.271)):
            assert share == pytest.approx(target, abs=0.01)

    def test_param_shares_match_paper(self, decoder_graph):
        profile = profile_network(decoder_graph)
        total = sum(b.params for b in profile.branches)
        shares = [b.params / total for b in profile.branches]
        for share, target in zip(shares, (0.121, 0.670, 0.209)):
            assert share == pytest.approx(target, abs=0.02)

    def test_shared_front_is_about_4_5_gop(self, decoder_graph):
        profile = profile_network(decoder_graph)
        assert profile.branches[1].shared_ops / GIGA == pytest.approx(4.5, rel=0.1)
        assert profile.branches[1].shared_ops == profile.branches[2].shared_ops

    def test_untied_bias_policy(self, decoder_graph):
        shapes = decoder_graph.infer_shapes()
        for node in decoder_graph.nodes():
            if not isinstance(node.layer, Conv2d):
                continue
            pixels = shapes[node.name].height * shapes[node.name].width
            if pixels <= UNTIED_BIAS_MAX_PIXELS:
                assert node.layer.bias is BiasMode.UNTIED, node.name
            else:
                assert node.layer.bias is BiasMode.TIED, node.name

    def test_latent_reshapes_to_4x8x8(self):
        assert DecoderPlan().latent_channels == 4

    def test_bad_latent_dim_rejected(self):
        with pytest.raises(ValueError):
            DecoderPlan(latent_dim=100).latent_channels

    def test_custom_plan_scales(self):
        small = DecoderPlan(
            br1_channels=(16, 16),
            shared_channels=(16, 16),
            br2_channels=(8,),
        )
        graph = build_codec_avatar_decoder(small)
        shapes = graph.infer_shapes()
        assert shapes["geometry"].as_tuple() == (3, 32, 32)
        assert shapes["texture"].as_tuple() == (3, 64, 64)


class TestMimic:
    def test_same_structure_as_decoder(self, decoder_graph, mimic_graph):
        assert mimic_graph.node_names() == decoder_graph.node_names()
        assert (
            mimic_graph.infer_shapes() == decoder_graph.infer_shapes()
        )

    def test_all_convs_tied(self, mimic_graph):
        for node in mimic_graph.nodes():
            if isinstance(node.layer, Conv2d):
                assert node.layer.bias is BiasMode.TIED

    def test_far_fewer_params_than_decoder(self, decoder_graph, mimic_graph):
        decoder_params = profile_network(decoder_graph).total_params
        mimic_params = profile_network(mimic_graph).total_params
        assert mimic_params < 0.3 * decoder_params

    def test_ops_nearly_identical(self, decoder_graph, mimic_graph):
        # The paper's mimic has 3.7% fewer ops; ours differs only in the
        # (negligible) bias accounting.
        decoder_ops = profile_network(decoder_graph).total_ops
        mimic_ops = profile_network(mimic_graph).total_ops
        assert mimic_ops == pytest.approx(decoder_ops, rel=0.01)


class TestBenchmarkNetworks:
    def test_zoo_registry(self):
        assert "codec_avatar_decoder" in list_models()
        assert len(list_models()) == 8
        with pytest.raises(KeyError, match="known models"):
            get_model("resnet50")

    def test_alexnet_macs_in_known_range(self, alexnet_graph):
        # Ungrouped AlexNet is ~1.1-1.2 GMAC.
        profile = profile_network(alexnet_graph)
        assert 0.9e9 < profile.total_macs < 1.4e9

    def test_alexnet_fc_sizes(self, alexnet_graph):
        shapes = alexnet_graph.infer_shapes()
        assert shapes["logits"].channels == 1000

    def test_vgg16_macs_match_reference(self, vgg16_graph):
        # VGG-16 is canonically ~15.5 GMAC at 224x224.
        profile = profile_network(vgg16_graph)
        assert profile.total_macs == pytest.approx(15.47e9, rel=0.02)

    def test_vgg16_params_match_reference(self, vgg16_graph):
        # ~138 M parameters.
        profile = profile_network(vgg16_graph)
        assert profile.total_params == pytest.approx(138.3e6, rel=0.02)

    def test_tiny_yolo_macs(self, tiny_yolo_graph):
        profile = profile_network(tiny_yolo_graph)
        assert 2.5e9 < profile.total_macs < 4.5e9

    def test_zfnet_single_branch(self):
        graph = get_model("zfnet")
        assert len(graph.output_names()) == 1

    def test_all_zoo_models_validate(self):
        for name in list_models():
            get_model(name).validate()


class TestDecoderVariants:
    def test_gan_decoder_structure(self):
        from repro.models.variants import build_gan_decoder

        graph = build_gan_decoder()
        shapes = graph.infer_shapes()
        assert graph.output_names() == ["geometry", "texture"]
        assert shapes["texture"].as_tuple() == (3, 1024, 1024)
        # GAN-style decoder uses conventional convolutions.
        from repro.ir.layer import BiasMode, Conv2d

        for node in graph.nodes():
            if isinstance(node.layer, Conv2d):
                assert node.layer.bias is BiasMode.TIED

    def test_gan_decoder_texture_dominates(self):
        from repro.models.variants import build_gan_decoder
        from repro.profiler.network import profile_network

        profile = profile_network(build_gan_decoder())
        assert profile.branches[1].ops > 10 * profile.branches[0].ops

    def test_modular_decoder_structure(self):
        from repro.models.variants import build_modular_decoder

        graph = build_modular_decoder()
        assert graph.output_names() == [
            "geometry",
            "face_texture",
            "eye_texture",
            "mouth_texture",
        ]
        shapes = graph.infer_shapes()
        assert shapes["face_texture"].as_tuple() == (3, 512, 512)
        assert shapes["eye_texture"].as_tuple() == (3, 128, 128)

    def test_modular_decoder_shared_trunk_feeds_three(self):
        from repro.construction.reorg import build_pipeline_plan
        from repro.models.variants import build_modular_decoder

        plan = build_pipeline_plan(build_modular_decoder())
        assert plan.num_branches == 4
        # Trunk assigned to the face branch (highest demand); the eye and
        # mouth modules read its output across branches.
        face = plan.branches[1]
        assert any(s.shared for s in face.stages)
        trunk_names = {s.name for s in face.stages}
        for region in (2, 3):
            head = plan.branches[region].stages[0]
            assert set(head.stage.sources) <= trunk_names

    def test_variants_explore_end_to_end(self):
        from repro.devices.fpga import get_device
        from repro.fcad.flow import FCad
        from repro.models.variants import build_modular_decoder

        result = FCad(
            network=build_modular_decoder(),
            device=get_device("ZU17EG"),
            quant="int8",
        ).run(iterations=3, population=15, seed=0)
        assert result.dse.best_perf.fps > 0
        assert len(result.dse.best_perf.branches) == 4
