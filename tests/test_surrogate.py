"""Learned surrogate filter: pruning modes, calibration, result codec."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.arch.config import ConfigError
from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.cache import FileEvalCache, LocalEvalCache, harvest_entries
from repro.dse.engine import DseEngine
from repro.dse.objective import (
    BranchMetrics,
    CalibratedOracle,
    ResidualCalibration,
)
from repro.dse.result import (
    RESULT_FORMAT_VERSION,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.dse.space import Customization
from repro.dse.surrogate import (
    SURROGATE_MODES,
    SurrogateFilter,
    calibration_from_cache,
    resolve_surrogate_mode,
)
from repro.quant.schemes import INT8
from tests.conftest import make_tiny_decoder

FIXTURES = Path(__file__).parent / "data"

#: Search size that reliably engages pruning on the tiny decoder in both
#: active modes while staying fast (probed: prune skips ~40% of solves,
#: verify a handful, identical best fitness).
SEARCH = dict(iterations=8, population=24, seed=0)
MIN_SAMPLES = 24


@pytest.fixture(scope="module")
def tiny_plan():
    return build_pipeline_plan(make_tiny_decoder())


def make_engine(plan):
    return DseEngine(
        plan=plan,
        budget=get_device("Z7045").budget(),
        customization=Customization.uniform(plan.num_branches),
        quant=INT8,
    )


def search(plan, mode, min_samples=MIN_SAMPLES, **overrides):
    kwargs = dict(SEARCH, **overrides)
    return make_engine(plan).search(
        surrogate=mode, surrogate_min_samples=min_samples, **kwargs
    )


def _stable_stats(stats):
    """Surrogate stats with the wall-clock field zeroed for comparison."""
    return dataclasses.replace(stats, fit_seconds=0.0)


class TestModeResolution:
    def test_valid_modes(self):
        for mode in SURROGATE_MODES:
            assert resolve_surrogate_mode(mode) == mode

    def test_none_is_off(self):
        assert resolve_surrogate_mode(None) == "off"

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown surrogate mode"):
            resolve_surrogate_mode("guess")

    def test_engine_validates_mode(self, tiny_plan):
        with pytest.raises(ValueError, match="unknown surrogate mode"):
            make_engine(tiny_plan).search(surrogate="bogus", **SEARCH)

    def test_filter_rejects_off(self, tiny_plan):
        engine = make_engine(tiny_plan)
        with pytest.raises(ValueError, match="active mode"):
            SurrogateFilter(engine.spec, engine.resolved_objective("paper"), "off")

    def test_rerank_conflict_raises(self, tiny_plan):
        with pytest.raises(ValueError, match="re-rank"):
            make_engine(tiny_plan).search(
                surrogate="prune", rerank_oracle="sim", **SEARCH
            )


class TestPruneMode:
    def test_prunes_and_stays_within_tolerance(self, tiny_plan):
        off = search(tiny_plan, "off")
        prune = search(tiny_plan, "prune")
        stats = prune.surrogate_stats
        assert off.surrogate_stats is None
        assert stats is not None and stats.mode == "prune"
        # The whole point: pruning engages and solves go down.
        assert stats.pruned_candidates > 0
        assert prune.evaluations < off.evaluations
        # The accuracy contract the bench gates at 1%.
        assert prune.best_fitness == pytest.approx(
            off.best_fitness, rel=0.01
        )

    def test_two_runs_bit_identical(self, tiny_plan):
        first = search(tiny_plan, "prune")
        second = search(tiny_plan, "prune")
        assert first.surrogate_stats.pruned_candidates > 0
        assert first.best_fitness == second.best_fitness
        assert first.best_config == second.best_config
        assert first.history == second.history
        assert first.evaluations == second.evaluations
        assert first.cache_hits == second.cache_hits
        assert _stable_stats(first.surrogate_stats) == _stable_stats(
            second.surrogate_stats
        )

    def test_warm_cache_deterministic(self, tiny_plan):
        """Same warm cache state -> same pruning decisions, bit for bit."""

        def run():
            cache = LocalEvalCache()
            search(tiny_plan, "off", cache=cache, seed=1)
            return search(tiny_plan, "prune", cache=cache)

        first, second = run(), run()
        assert first.best_fitness == second.best_fitness
        assert first.evaluations == second.evaluations
        assert _stable_stats(first.surrogate_stats) == _stable_stats(
            second.surrogate_stats
        )


class TestVerifyMode:
    def test_identical_to_off(self, tiny_plan):
        off = search(tiny_plan, "off")
        verify = search(tiny_plan, "verify")
        assert verify.surrogate_stats.mode == "verify"
        assert verify.surrogate_stats.pruned_candidates > 0
        assert verify.best_fitness == off.best_fitness
        assert verify.best_config == off.best_config
        assert verify.history == off.history
        assert verify.convergence_iteration == off.convergence_iteration
        assert verify.evaluations < off.evaluations

    def test_no_false_prunes(self, tiny_plan):
        verify = search(tiny_plan, "verify")
        assert verify.surrogate_stats.false_prunes == 0


class TestMinSamplesFallback:
    def test_below_min_samples_is_a_noop(self, tiny_plan):
        """Too little training data: graceful fallback to the exact path."""
        off = search(tiny_plan, "off")
        prune = search(tiny_plan, "prune", min_samples=10_000)
        stats = prune.surrogate_stats
        assert stats is not None
        assert stats.pruned_candidates == 0
        assert stats.pruned_buckets == 0
        assert stats.refits == 0
        assert prune.best_fitness == off.best_fitness
        assert prune.best_config == off.best_config
        assert prune.history == off.history
        assert prune.evaluations == off.evaluations

    def test_min_samples_must_be_positive(self, tiny_plan):
        engine = make_engine(tiny_plan)
        with pytest.raises(ValueError, match="min_samples"):
            SurrogateFilter(
                engine.spec,
                engine.resolved_objective("paper"),
                "prune",
                min_samples=0,
            )


class TestHarvest:
    def test_harvest_matches_across_backends(self, tiny_plan, tmp_path):
        local = LocalEvalCache()
        search(tiny_plan, "off", cache=local)
        digest = make_engine(tiny_plan).spec.digest
        rows = harvest_entries(local, digest)
        assert rows
        # Sorted by (branch, bucket): the model fit is a pure function
        # of cache contents, independent of insertion order.
        assert rows == sorted(rows, key=lambda row: (row[0], row[1]))
        assert all(
            isinstance(branch, int) and len(bucket) == 3
            for branch, bucket, _ in rows
        )
        # Foreign digests harvest nothing.
        assert harvest_entries(local, "not-a-digest") == []

        path = tmp_path / "evals.db"
        persistent = FileEvalCache(path)
        search(tiny_plan, "off", cache=persistent)
        persistent.close()
        # A reopened file cache harvests the same training set: warm
        # caches warm the model.
        reopened = FileEvalCache(path)
        try:
            persisted = [
                (branch, bucket, solution.fps)
                for branch, bucket, solution in reopened.harvest(digest)
            ]
        finally:
            reopened.close()
        assert persisted == [
            (branch, bucket, solution.fps)
            for branch, bucket, solution in rows
        ]


class TestCalibration:
    def test_identity(self):
        calibration = ResidualCalibration.identity(3)
        assert calibration.scales == (1.0, 1.0, 1.0)
        assert calibration.scale(0) == 1.0
        assert calibration.scale(99) == 1.0  # identity past the known end
        metrics = BranchMetrics(fps=(10.0, 20.0), meets_batch=(True, True))
        assert calibration.apply(metrics) == metrics

    def test_apply_scales_fps_only(self):
        calibration = ResidualCalibration(scales=(0.5, 2.0), samples=4)
        metrics = BranchMetrics(
            fps=(10.0, 20.0), meets_batch=(True, False), p99_ms=7.5
        )
        scaled = calibration.apply(metrics)
        assert scaled.fps == (5.0, 40.0)
        assert scaled.meets_batch == metrics.meets_batch
        assert scaled.p99_ms == metrics.p99_ms

    def test_from_cache_fits_per_branch_scales(self):
        cache = LocalEvalCache()
        digest = "spec-digest"
        buckets = ((10, 5, 3), (12, 6, 4), (14, 7, 5))
        for i, bucket in enumerate(buckets):
            for branch in (0, 1):
                cache.put(
                    (digest, branch, bucket),
                    SimpleNamespace(
                        fps=100.0 + 10.0 * i, meets_batch_target=True
                    ),
                )
            # Branch 0 measures 20% slower than analytical; branch 1 is
            # spot on.
            cache.put(
                (digest, "rerank", "sim", (bucket, bucket)),
                BranchMetrics(
                    fps=(0.8 * (100.0 + 10.0 * i), 100.0 + 10.0 * i),
                    meets_batch=(True, True),
                    oracle="sim",
                ),
            )
        calibration = calibration_from_cache(cache, digest)
        assert calibration.source == "cache"
        assert calibration.samples == 6
        assert calibration.scales[0] == pytest.approx(0.8)
        assert calibration.scales[1] == pytest.approx(1.0)
        # Too few pairs per branch -> identity scales.
        strict = calibration_from_cache(cache, digest, min_pairs=10)
        assert strict.scales == (1.0, 1.0)

    def test_from_empty_cache_is_identity(self):
        calibration = calibration_from_cache(LocalEvalCache(), "digest")
        assert calibration.source == "identity"
        assert calibration.samples == 0

    def test_calibrated_oracle_key_and_measure(self, tiny_plan):
        calibration = ResidualCalibration(scales=(0.9, 1.1), samples=6)
        oracle = CalibratedOracle(calibration)
        assert oracle.name == "calibrated"
        assert oracle.key == "calibrated(scales=[0.9,1.1])"
        spec = make_engine(tiny_plan).spec
        solutions = [
            SimpleNamespace(fps=100.0, meets_batch_target=True),
            SimpleNamespace(fps=50.0, meets_batch_target=True),
        ]
        metrics = oracle.measure(spec, [0.5] * 4, solutions)
        assert metrics.fps == pytest.approx((90.0, 55.0))
        assert metrics.oracle == "calibrated"


class TestResultCodec:
    def test_round_trip_with_surrogate_stats(self, tiny_plan):
        result = search(tiny_plan, "prune")
        assert result.surrogate_stats is not None
        clone = result_from_json(result_to_json(result))
        assert clone == result
        # And the dict shape is JSON-stable.
        assert result_to_dict(clone) == result_to_dict(result)

    def test_off_payload_omits_surrogate_key(self, tiny_plan):
        result = search(tiny_plan, "off")
        payload = result_to_dict(result)
        assert "surrogate_stats" not in payload
        assert result_from_dict(payload).surrogate_stats is None

    def test_pinned_pre_surrogate_payload_loads(self):
        """Old archived payloads (no surrogate_stats key) keep loading."""
        text = (FIXTURES / "dse_result_pre_surrogate.json").read_text()
        assert "surrogate_stats" not in json.loads(text)
        result = result_from_json(text)
        assert result.surrogate_stats is None
        assert result.best_fitness > 0
        assert result.iterations == len(result.history) == 3
        # Round-trips losslessly through the current codec.
        assert result_from_json(result_to_json(result)) == result

    def test_unknown_version_raises(self):
        payload = json.loads(
            (FIXTURES / "dse_result_pre_surrogate.json").read_text()
        )
        payload["version"] = RESULT_FORMAT_VERSION + 1
        with pytest.raises(ConfigError, match="version"):
            result_from_dict(payload)

    def test_malformed_payload_raises(self):
        with pytest.raises(ConfigError, match="malformed"):
            result_from_dict({"version": RESULT_FORMAT_VERSION})
