"""Chaos layer: deterministic fault plans, the recovery stack, and the
engine-equivalence guarantee extended to faulty runs.

The contract under test: a chaos plan injects *identical* faults into
the coroutine scheduler and the event-heap engine (counters exactly
equal, latencies to clock round-off), two runs at one seed are
bit-identical, every submitted frame resolves (served, shed, or counted
failed — none hang), and with no plan and default recovery knobs nothing
changes at all.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import (
    ChaosPlan,
    CircuitBreaker,
    GroupSpec,
    RecoveryPolicy,
    Replica,
    ReplicaPool,
    canned_workload,
    health_summary,
    report_from_json,
    report_to_json,
    serve_cluster,
    serve_trace,
    serve_workload,
    trace_from_workload,
)
from repro.serving.chaos import ReplicaChaosState
from repro.sim.runner import FrameLatencyProfile

FAST = FrameLatencyProfile(
    finish_ms=(6.0, 8.0),
    first_frame_ms=6.0,
    steady_interval_ms=2.0,
    frequency_mhz=200.0,
)
BIG = FrameLatencyProfile(
    finish_ms=(8.0, 12.0, 16.0),
    first_frame_ms=8.0,
    steady_interval_ms=4.0,
    frequency_mhz=200.0,
)

#: Fields the two engines legitimately report differently.
_ENGINE_ONLY = ("engine", "peak_replicas")


def assert_payloads_match(coroutine, heap):
    """Same report up to the asyncio clock's seconds<->ms round-off."""
    a = json.loads(report_to_json(coroutine))
    b = json.loads(report_to_json(heap))
    for field in _ENGINE_ONLY:
        a.pop(field), b.pop(field)
    _match(a, b, path="report")


def _match(a, b, path):
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ), path
    if isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for key in a:
            _match(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _match(x, y, f"{path}[{i}]")
    elif isinstance(a, float) or isinstance(b, float):
        assert a == pytest.approx(b, rel=1e-6, abs=1e-6), path
    else:
        assert a == b, path


def assert_lossless(report):
    assert report.completed + report.shed + report.failed == report.submitted


def run_both(workload, *, replicas, policy, chaos, recovery):
    """One faulty session through each engine, on fresh pools."""
    coroutine = serve_workload(
        ReplicaPool(FAST, replicas=replicas, max_batch=4),
        workload,
        policy=policy,
        chaos=chaos,
        recovery=recovery,
    )
    heap = serve_trace(
        ReplicaPool(FAST, replicas=replicas, max_batch=4),
        trace_from_workload(workload),
        policy=policy,
        chaos=chaos,
        recovery=recovery,
    )
    return coroutine, heap


# ---------------------------------------------------------------------------
# spec grammar
# ---------------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_round_trips(self):
        spec = (
            "crash-at:0:3,die-at:throughput/1:120.5,"
            "stall:2:2:40.0,degrade:1:1:2.5"
        )
        plan = ChaosPlan.parse(spec)
        assert len(plan.faults) == 4
        assert plan.to_spec() == spec
        assert ChaosPlan.parse(plan.to_spec()) == plan
        crash = plan.faults[0]
        assert (crash.kind, crash.group, crash.replica, crash.at) == (
            "crash-at", "", 0, 3.0
        )
        die = plan.faults[1]
        assert (die.group, die.replica, die.at) == ("throughput", 1, 120.5)

    def test_group_scoping(self):
        plan = ChaosPlan.parse("crash-at:0:1,die-at:latency/1:50")
        # Unqualified clauses target every group; qualified ones only
        # their own.
        assert len(plan.for_group("")) == 1
        assert len(plan.for_group("latency")) == 2
        assert len(plan.for_group("throughput")) == 1
        assert set(plan.states("latency")) == {0, 1}
        assert set(plan.states("")) == {0}

    def test_empty_plan_is_falsy(self):
        assert not ChaosPlan.parse("")
        assert not ChaosPlan()
        assert ChaosPlan.parse("crash-at:0:1")

    @pytest.mark.parametrize(
        ("spec", "message"),
        [
            ("bogus:0:1", "unknown chaos fault"),
            ("crash-at:0", "arguments after"),
            ("crash-at:x:1", "replica must be an integer"),
            ("crash-at:-1:1", "must be >= 0"),
            ("crash-at:0:0", "positive integer"),
            ("crash-at:0:1.5", "positive integer"),
            ("die-at:0:-5", ">= 0 ms"),
            ("die-at:0:soon", "numeric argument"),
            ("stall:0:1:0", "stall duration must be positive"),
            ("degrade:0:1:1.0", "multiplier must be > 1"),
            ("crash-at:0:1,crash-at:0:2", "duplicate"),
        ],
    )
    def test_bad_specs_rejected(self, spec, message):
        with pytest.raises(ValueError, match=message):
            ChaosPlan.parse(spec)


class TestChaosState:
    def test_crash_counter_is_one_based(self):
        state = ChaosPlan.parse("crash-at:0:2").states("")[0]
        assert not state.on_dispatch(0.0).crashed
        assert state.on_dispatch(10.0).crashed

    def test_death_is_observed_lazily(self):
        state = ChaosPlan.parse("die-at:0:100").states("")[0]
        assert not state.on_dispatch(99.9).crashed
        assert state.on_dispatch(100.0).crashed
        assert state.on_dispatch(500.0).crashed

    def test_degrade_and_stall_triggers(self):
        state = ReplicaChaosState()
        state.degrade_at, state.degrade_factor = 2, 3.0
        state.stall_at, state.stall_ms = 2, 25.0
        first = state.on_dispatch(0.0)
        assert first.latency_factor == 1.0 and first.stall_ms == 0.0
        second = state.on_dispatch(10.0)
        assert second.latency_factor == 3.0 and second.stall_ms == 25.0
        # The stall is one-shot; degradation persists.
        third = state.on_dispatch(20.0)
        assert third.latency_factor == 3.0 and third.stall_ms == 0.0


# ---------------------------------------------------------------------------
# recovery policy and breaker
# ---------------------------------------------------------------------------
class TestRecoveryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"breaker_threshold": -1},
            {"replace_after_ms": -0.5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)

    def test_breaker_trips_and_closes(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        assert not breaker.open
        breaker.record_failure()
        assert breaker.open and breaker.trips == 1
        breaker.record_success()
        assert not breaker.open and breaker.consecutive_failures == 0

    def test_breaker_threshold_zero_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(10):
            breaker.record_failure()
        assert not breaker.open and breaker.trips == 0


def test_health_summary_empty_while_all_up():
    replicas = [Replica(replica_id=i, latency=FAST) for i in range(3)]
    assert health_summary(replicas) == ""
    replicas[0].health = "dead"
    replicas[1].health = "degraded"
    assert health_summary(replicas) == "1 up/1 degraded/1 dead"


# ---------------------------------------------------------------------------
# engine equivalence under faults
# ---------------------------------------------------------------------------
class TestEngineEquivalenceUnderChaos:
    @pytest.mark.parametrize("policy", ["fifo", "edf", "fair"])
    def test_mixed_faults_single_pool(self, policy):
        """Crash + degrade + stall with retries and replacement: both
        engines agree under every scheduling policy."""
        coroutine, heap = run_both(
            canned_workload(avatars=6, frames_per_avatar=10, seed=3),
            replicas=3,
            policy=policy,
            chaos=ChaosPlan.parse(
                "crash-at:0:2,degrade:1:2:2.0,stall:2:1:30.0"
            ),
            recovery=RecoveryPolicy(max_retries=2, replace_after_ms=200.0),
        )
        assert_payloads_match(coroutine, heap)
        assert_lossless(coroutine)
        assert coroutine.replicas_lost == 1
        assert coroutine.replicas_replaced == 1
        assert coroutine.retries > 0
        assert coroutine.degraded_time_ms > 0.0

    def test_cluster_failover_and_breaker(self):
        """Killing a whole group trips its breaker; the failure-aware
        router fails traffic over to the surviving group."""
        groups = [
            GroupSpec("latency", FAST, replicas=2, policy="edf"),
            GroupSpec("throughput", BIG, replicas=2, policy="fifo"),
        ]
        workload = canned_workload(
            avatars=8, frames_per_avatar=10, deadline_ms=60.0, seed=1
        )
        chaos = ChaosPlan.parse("die-at:latency/0:60,die-at:latency/1:90")
        recovery = RecoveryPolicy(
            max_retries=1, breaker_threshold=1, replace_after_ms=400.0
        )
        coroutine = serve_cluster(
            groups, workload, router="deadline", chaos=chaos, recovery=recovery
        )
        heap = serve_trace(
            groups,
            trace_from_workload(workload),
            router="deadline",
            chaos=chaos,
            recovery=recovery,
        )
        assert_payloads_match(coroutine, heap)
        assert_lossless(coroutine)
        assert coroutine.replicas_lost == 2
        assert coroutine.failovers > 0
        # Failovers are charged to the group that *received* the traffic.
        assert coroutine.groups[1].failovers == coroutine.failovers

    def test_total_kill_is_lossless(self):
        """Every replica dead and no retries: the session still ends,
        with every unserved frame counted failed — none hang."""
        coroutine, heap = run_both(
            canned_workload(avatars=4, frames_per_avatar=8, seed=0),
            replicas=2,
            policy="fifo",
            chaos=ChaosPlan.parse("die-at:0:0,die-at:1:0"),
            recovery=RecoveryPolicy(max_retries=0),
        )
        assert_payloads_match(coroutine, heap)
        assert_lossless(coroutine)
        assert coroutine.completed == 0
        assert coroutine.failed == coroutine.submitted
        assert coroutine.replicas_lost == 2

    def test_hedging_wins_against_a_degraded_replica(self):
        """With one replica degraded 4x, hedged duplicates on a healthy
        replica win; the loser's occupancy is still charged."""
        coroutine, heap = run_both(
            canned_workload(
                avatars=6,
                frames_per_avatar=8,
                deadline_ms=15.0,
                jitter_ms=3.0,
                seed=2,
            ),
            replicas=3,
            policy="edf",
            chaos=ChaosPlan.parse("degrade:0:1:4.0"),
            recovery=RecoveryPolicy(hedge=True),
        )
        assert_payloads_match(coroutine, heap)
        assert_lossless(coroutine)
        assert coroutine.hedges > 0
        assert coroutine.hedge_wins > 0

    def test_faulty_runs_are_deterministic(self):
        """Two invocations of one faulty seeded session serialize to the
        same bytes, per engine."""
        kwargs = dict(
            replicas=3,
            policy="edf",
            chaos=ChaosPlan.parse("crash-at:0:2,die-at:1:100"),
            recovery=RecoveryPolicy(max_retries=2, replace_after_ms=250.0),
        )
        workload = canned_workload(avatars=6, frames_per_avatar=10, seed=5)
        first_coroutine, first_heap = run_both(workload, **kwargs)
        second_coroutine, second_heap = run_both(workload, **kwargs)
        assert report_to_json(first_coroutine) == report_to_json(
            second_coroutine
        )
        assert report_to_json(first_heap) == report_to_json(second_heap)

    def test_no_chaos_and_default_knobs_change_nothing(self):
        """The recovery stack is invisible until a fault fires: default
        knobs reproduce the fault-free report bit for bit."""
        workload = canned_workload(avatars=6, frames_per_avatar=10, seed=4)
        baseline = serve_workload(
            ReplicaPool(FAST, replicas=2, max_batch=4), workload, policy="edf"
        )
        guarded = serve_workload(
            ReplicaPool(FAST, replicas=2, max_batch=4),
            workload,
            policy="edf",
            chaos=ChaosPlan(),
            recovery=RecoveryPolicy(),
        )
        assert report_to_json(guarded) == report_to_json(baseline)


# ---------------------------------------------------------------------------
# reports: health strings, rendering, round-trip
# ---------------------------------------------------------------------------
class TestChaosReporting:
    @pytest.fixture(scope="class")
    def faulty_report(self):
        groups = [
            GroupSpec("latency", FAST, replicas=2, policy="edf"),
            GroupSpec("throughput", BIG, replicas=2, policy="fifo"),
        ]
        return serve_cluster(
            groups,
            canned_workload(avatars=6, frames_per_avatar=8, seed=1),
            router="deadline",
            chaos=ChaosPlan.parse("die-at:latency/0:40"),
            recovery=RecoveryPolicy(max_retries=1),
        )

    def test_group_health_string_lands_in_report(self, faulty_report):
        health = {g.name: g.health for g in faulty_report.groups}
        assert "1 up/0 degraded/1 dead" in health["latency"]
        assert health["throughput"] == ""

    def test_render_shows_health_and_recovery(self, faulty_report):
        rendered = faulty_report.render()
        assert "[1 up/0 degraded/1 dead]" in rendered
        assert "recovery" in rendered
        assert "replicas lost/replaced" in rendered

    def test_faulty_report_round_trips(self, faulty_report):
        loaded = report_from_json(report_to_json(faulty_report))
        assert loaded == faulty_report
        assert loaded.replicas_lost == faulty_report.replicas_lost
        assert loaded.groups[0].health == faulty_report.groups[0].health
