"""The distributed fleet runtime: wire, auth, faults, and the sweep plane.

The load-bearing property is the last class: a sweep sharded across
workers — including workers that die mid-sweep, workers that never
heartbeat, and coordinators restarted from a checkpoint — returns results
bit-identical to solving every case serially. Everything above it tests
the pieces that property rests on (exact float framing, authenticated
handshakes, deterministic fault injection, crash-consistent cache files).
"""

from __future__ import annotations

import os
import random
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.devices.fpga import get_device
from repro.dist.coordinator import (
    FleetSpec,
    SweepCase,
    SweepCoordinator,
    run_fleet_sweep,
)
from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    AuthError,
    ProtocolError,
    auth_mac,
    client_handshake,
    server_handshake,
)
from repro.dist.wire import (
    LineSocket,
    decode_message,
    encode_message,
    pack_blob,
    unpack_blob,
)
from repro.dist.worker import run_worker
from repro.dse.cache import FileEvalCache, LocalEvalCache
from repro.dse.engine import DseEngine
from repro.dse.objective import resolve_oracle
from repro.dse.space import Customization
from repro.quant.schemes import INT8
from tests.conftest import make_tiny_decoder


# ---------------------------------------------------------------------------
# wire framing
# ---------------------------------------------------------------------------
class TestWire:
    def test_floats_round_trip_exactly(self):
        # json's shortest-repr floats are lossless — the reason a remote
        # solve can be bit-identical to a local one.
        values = [0.1 + 0.2, 1e-300, 7.3 / 3.0, -0.0, 123456.789012345]
        message = decode_message(encode_message({"v": values}))
        assert message["v"] == values

    def test_single_line_framing(self):
        encoded = encode_message({"a": 1, "b": "text"})
        assert "\n" not in encoded
        assert decode_message(encoded) == {"a": 1, "b": "text"}

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            decode_message("[1, 2, 3]")

    def test_blob_round_trip(self):
        payload = (("digest", 3, (10, 20)), {"fps": 71.5, "cfg": (1, 2)})
        assert unpack_blob(pack_blob(payload)) == payload


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_and_round_trip(self):
        plan = FaultPlan.parse("die-after-leases:1,drop-every:3")
        assert plan.die_after_leases == 1
        assert plan.drop_every == 3
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_empty_spec_is_no_faults(self):
        assert FaultPlan.parse("") == FaultPlan()

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="known faults"):
            FaultPlan.parse("segfault:1")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            FaultPlan.parse("drop-every:lots")

    def test_injector_is_counter_based(self):
        injector = FaultInjector(FaultPlan(die_after_leases=2))
        assert not injector.should_die_on_lease()
        assert injector.should_die_on_lease()
        server = FaultInjector(FaultPlan(drop_conn_after_decodes=2))
        assert [server.after_decode() for _ in range(3)] == [
            "ok", "drop-conn", "ok",
        ]


# ---------------------------------------------------------------------------
# the auth handshake
# ---------------------------------------------------------------------------
def _handshake(server_token: str, client_token: str):
    """Run both handshake halves over a socketpair; return (fate, fate)."""
    left, right = socket.socketpair()
    server_conn, client_conn = LineSocket(left), LineSocket(right)
    outcome: dict[str, object] = {}

    def serve() -> None:
        try:
            outcome["hello"] = server_handshake(server_conn, server_token)
        except ProtocolError as exc:
            outcome["server_error"] = exc

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        welcome = client_handshake(client_conn, client_token, role="worker")
        outcome["welcome"] = welcome
    except ProtocolError as exc:
        outcome["client_error"] = exc
    thread.join(timeout=5)
    server_conn.close()
    client_conn.close()
    return outcome


class TestHandshake:
    def test_matching_tokens_welcome(self):
        outcome = _handshake("secret", "secret")
        assert outcome["welcome"]["type"] == "welcome"
        assert outcome["hello"]["role"] == "worker"

    def test_wrong_token_rejected_both_sides(self):
        outcome = _handshake("secret", "WRONG")
        assert isinstance(outcome["client_error"], AuthError)
        assert isinstance(outcome["server_error"], AuthError)

    def test_version_mismatch_rejected_before_payload(self):
        left, right = socket.socketpair()
        server_conn, client_conn = LineSocket(left), LineSocket(right)
        thread = threading.Thread(
            target=lambda: pytest.raises(
                ProtocolError, server_handshake, server_conn, ""
            )
        )
        thread.start()
        client_conn.send(
            {"type": "hello", "version": PROTOCOL_VERSION + 1, "role": "w"}
        )
        reply = client_conn.recv()
        thread.join(timeout=5)
        server_conn.close()
        client_conn.close()
        assert reply["type"] == "error"
        assert "version" in reply["error"]

    def test_mac_binds_nonce_and_version(self):
        assert auth_mac("tok", "a") != auth_mac("tok", "b")
        assert auth_mac("tok", "a") != auth_mac("other", "a")


# ---------------------------------------------------------------------------
# FileEvalCache crash consistency
# ---------------------------------------------------------------------------
class TestFileCacheCrashConsistency:
    def test_kill_mid_flush_is_all_or_nothing(self, tmp_path):
        """A process hard-killed mid-flush never tears the cache file.

        The child commits a baseline batch, then arms a SQLite progress
        handler that ``os._exit``s the process partway through the next
        flush's transaction. On reopen the journal rolls the partial
        transaction back: every baseline entry survives and the doomed
        batch is absent *in its entirety* — never a partial batch.
        """
        path = tmp_path / "crash.sqlite"
        script = (
            "import os\n"
            "from repro.dse.cache import FileEvalCache\n"
            f"cache = FileEvalCache({str(path)!r})\n"
            "for i in range(5):\n"
            "    cache.put(('baseline', i), list(range(50)))\n"
            "cache.flush()\n"
            "for i in range(200):\n"
            "    cache.put(('doomed', i), list(range(200)))\n"
            "cache._conn.set_progress_handler(lambda: os._exit(17), 20)\n"
            "cache.flush()\n"
            "os._exit(0)\n"
        )
        import repro

        from pathlib import Path as _Path

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (
                str(_Path(repro.__file__).resolve().parents[1]),
                env.get("PYTHONPATH"),
            )
            if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=60
        )
        assert proc.returncode == 17, "the child must die mid-flush"
        with FileEvalCache(path) as survivor:
            entries = dict(survivor.items())
        baseline = [k for k in entries if k[0] == "baseline"]
        doomed = [k for k in entries if k[0] == "doomed"]
        assert len(baseline) == 5  # earlier flushes fully intact
        assert len(doomed) in (0, 200)  # atomic: all or nothing
        assert len(doomed) == 0  # ...and the kill really preempted commit


# ---------------------------------------------------------------------------
# the sweep control plane
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def engines():
    from repro.construction.reorg import build_pipeline_plan

    plan = build_pipeline_plan(make_tiny_decoder())
    return [
        DseEngine(
            plan=plan,
            budget=get_device(device).budget(),
            customization=Customization.uniform(plan.num_branches),
            quant=INT8,
        )
        for device in ("Z7045", "ZU9CG")
    ]


def make_case(engine, iterations=2, population=10, seed=13):
    return SweepCase(
        engine=engine,
        iterations=iterations,
        population=population,
        seed=seed,
        heuristic_seed=True,
        objective=engine.resolved_objective(None),
        rerank_oracle=resolve_oracle(engine.rerank_oracle),
        rerank_top_k=engine.rerank_top_k,
    )


def drive_fleet(cases, spec, workers=2, faults=()):
    """Serve ``cases`` with in-process worker threads; return (results, coord).

    Thread workers exercise the full wire protocol over loopback without
    the interpreter-startup cost of subprocess workers (the spawned-worker
    path is covered once, in ``test_search_many_fleet_end_to_end``).
    """
    assert spec.workers == 0, "drive_fleet supplies its own workers"
    coordinator = SweepCoordinator(cases, spec)
    box: dict[str, object] = {}
    server = threading.Thread(
        target=lambda: box.update(results=coordinator.serve()), daemon=True
    )
    server.start()
    for _ in range(500):
        if coordinator.port is not None:
            break
        time.sleep(0.01)
    assert coordinator.port is not None, "coordinator never bound its port"
    threads = []
    for index in range(workers):
        fault = None
        if index < len(faults) and faults[index]:
            fault = FaultInjector(FaultPlan.parse(faults[index]))
        thread = threading.Thread(
            target=run_worker,
            args=(spec.host, coordinator.port),
            kwargs=dict(token=spec.token, fault=fault),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    server.join(timeout=120)
    assert not server.is_alive(), f"sweep never drained: {coordinator.stats}"
    for thread in threads:
        thread.join(timeout=10)
    return box["results"], coordinator


def assert_same_result(actual, expected):
    assert actual.best_fitness == expected.best_fitness
    assert actual.best_config == expected.best_config
    assert actual.history == expected.history


class TestFleetSweep:
    @pytest.fixture(scope="class")
    def serial(self, engines):
        """The ground truth: every case solved in-process."""
        return [make_case(engine).run(LocalEvalCache()) for engine in engines]

    def test_two_workers_bit_identical_to_serial(self, engines, serial):
        cases = [make_case(engine) for engine in engines]
        spec = FleetSpec(workers=0, token="t", timeout_s=60.0)
        results, coordinator = drive_fleet(cases, spec, workers=2)
        for fleet_result, serial_result in zip(results, serial):
            assert_same_result(fleet_result, serial_result)
        assert coordinator.stats["shards"] == 2
        assert coordinator.stats["workers"] >= 2
        assert coordinator.stats["cache_entries"] > 0

    def test_killed_worker_shard_is_releases_and_lossless(
        self, engines, serial
    ):
        """A worker dying after its first lease loses time, not results."""
        cases = [make_case(engine) for engine in engines]
        spec = FleetSpec(workers=0, token="t", timeout_s=60.0)
        results, coordinator = drive_fleet(
            cases, spec, workers=2, faults=("die-after-leases:1",)
        )
        for fleet_result, serial_result in zip(results, serial):
            assert_same_result(fleet_result, serial_result)
        assert coordinator.stats["releases"] >= 1
        assert coordinator.stats["leases"] >= len(cases) + 1

    def test_heartbeat_timeout_releases_a_stalled_workers_shard(
        self, engines, serial
    ):
        """A worker that stops heartbeating loses its lease to the monitor.

        The stalled client holds its connection open (so the EOF fast
        path never fires) but sends no heartbeats; only the lease-timeout
        monitor can reclaim the shard.
        """
        cases = [make_case(engines[0])]
        spec = FleetSpec(
            workers=0, token="t", lease_timeout_s=0.5, timeout_s=60.0
        )
        coordinator = SweepCoordinator(cases, spec)
        box: dict[str, object] = {}
        server = threading.Thread(
            target=lambda: box.update(results=coordinator.serve()),
            daemon=True,
        )
        server.start()
        for _ in range(500):
            if coordinator.port is not None:
                break
            time.sleep(0.01)
        staller = LineSocket.connect("127.0.0.1", coordinator.port)
        try:
            client_handshake(staller, "t", role="worker")
            worker_id = staller.request({"type": "register"})["worker"]
            lease = staller.request(
                {"type": "lease_request", "worker": worker_id, "cache_seq": 0}
            )
            assert lease["type"] == "lease"
            # ...and then silence: no heartbeats, no result.
            worker = threading.Thread(
                target=run_worker,
                args=("127.0.0.1", coordinator.port),
                kwargs=dict(token="t"),
                daemon=True,
            )
            worker.start()
            server.join(timeout=60)
            assert not server.is_alive(), (
                f"stalled lease never re-leased: {coordinator.stats}"
            )
            worker.join(timeout=10)
        finally:
            staller.close()
        assert coordinator.stats["releases"] >= 1
        assert coordinator.stats["worker_deaths"] >= 1
        assert_same_result(box["results"][0], serial[0])

    def test_checkpoint_resume_skips_solved_shards(
        self, engines, serial, tmp_path
    ):
        checkpoint = tmp_path / "sweep.ckpt"
        cases = [make_case(engine) for engine in engines]
        spec = FleetSpec(
            workers=0, token="t", checkpoint=checkpoint, timeout_s=60.0
        )
        drive_fleet(cases, spec, workers=2)
        assert checkpoint.exists()

        # A restarted coordinator with the same sweep needs no workers at
        # all: every shard is already in the checkpoint.
        resumed = SweepCoordinator(
            [make_case(engine) for engine in engines], spec
        )
        assert resumed.stats["resumed"] == len(cases)
        results = resumed.serve()
        for fleet_result, serial_result in zip(results, serial):
            assert_same_result(fleet_result, serial_result)

    def test_checkpoint_for_a_different_sweep_is_ignored(
        self, engines, tmp_path
    ):
        checkpoint = tmp_path / "sweep.ckpt"
        cases = [make_case(engine) for engine in engines]
        spec = FleetSpec(
            workers=0, token="t", checkpoint=checkpoint, timeout_s=60.0
        )
        drive_fleet(cases, spec, workers=1)
        other = SweepCoordinator(
            [make_case(engine, seed=99) for engine in engines], spec
        )
        assert other.stats["resumed"] == 0

    def test_fleet_sweep_rejects_live_rng_seeds(self, engines):
        with pytest.raises(ValueError, match="integer"):
            run_fleet_sweep(
                engines, FleetSpec(workers=0), seed=random.Random(3)
            )

    def test_search_many_fleet_end_to_end(self, engines, serial):
        """``search_many(fleet=...)`` with spawned subprocess workers.

        The one test on the full production path: coordinator-spawned
        worker subprocesses, dedup (the repeated engine shares a shard),
        and warming the caller's cache.
        """
        cache = LocalEvalCache()
        results = DseEngine.search_many(
            [engines[0], engines[1], engines[0]],
            iterations=2,
            population=10,
            seed=13,
            cache=cache,
            fleet=FleetSpec(workers=2, token="t", timeout_s=120.0),
        )
        assert len(results) == 3
        assert results[0] is results[2] or (
            results[0].best_config == results[2].best_config
            and results[0].history == results[2].history
        )
        for fleet_result, serial_result in zip(results[:2], serial):
            assert_same_result(fleet_result, serial_result)
        assert len(cache) > 0  # the fleet warmed the caller's cache
