"""Tests for the device database and resource budgets."""

from __future__ import annotations

import pytest

from repro.devices.asic import AsicSpec
from repro.devices.budget import ResourceBudget
from repro.devices.fpga import (
    KU115,
    Z7045,
    ZU17EG,
    ZU9CG,
    get_device,
    list_devices,
)


class TestFpgaDatabase:
    def test_paper_budgets_match_table_iv(self):
        # "Resource budget: 900 DSPs, 1090 BRAMs" etc.
        assert (Z7045.dsp, Z7045.bram_18k) == (900, 1090)
        assert (ZU17EG.dsp, ZU17EG.bram_18k) == (1590, 1592)
        assert (ZU9CG.dsp, ZU9CG.bram_18k) == (2520, 1824)

    def test_ku115_is_largest(self):
        assert KU115.dsp > ZU9CG.dsp

    def test_lookup_case_insensitive(self):
        assert get_device("zu9cg") is ZU9CG

    def test_unknown_device_raises_with_choices(self):
        with pytest.raises(KeyError, match="known devices"):
            get_device("virtex9000")

    def test_list_sorted_by_dsp(self):
        dsps = [dev.dsp for dev in list_devices()]
        assert dsps == sorted(dsps)

    def test_budget_conversion(self):
        budget = Z7045.budget()
        assert budget.compute == 900
        assert budget.memory == 1090
        assert budget.bandwidth_gbps > 0


class TestResourceBudget:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget(compute=-1, memory=0, bandwidth_gbps=0)

    def test_scaled_fraction(self):
        budget = ResourceBudget(100, 50, 10.0).scaled(0.5)
        assert (budget.compute, budget.memory) == (50, 25)
        assert budget.bandwidth_gbps == pytest.approx(5.0)

    def test_scaled_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget(1, 1, 1.0).scaled(1.5)

    def test_fits(self):
        budget = ResourceBudget(10, 10, 1.0)
        assert budget.fits(10, 10, 1.0)
        assert not budget.fits(11, 0, 0)
        assert not budget.fits(0, 11, 0)
        assert not budget.fits(0, 0, 1.1)

    def test_with_methods_replace_single_field(self):
        budget = ResourceBudget(10, 10, 1.0)
        assert budget.with_compute(5).compute == 5
        assert budget.with_memory(7).memory == 7
        assert budget.with_bandwidth(2.5).bandwidth_gbps == 2.5
        assert budget.compute == 10  # frozen original untouched


class TestAsicSpec:
    def test_budget_converts_sram_to_block_equivalents(self):
        spec = AsicSpec(
            name="edge-npu",
            mac_units=1024,
            onchip_buffer_kb=1024,
            bandwidth_gbps=25.6,
        )
        budget = spec.budget()
        assert budget.compute == 1024
        # 1 MiB of SRAM = 8 Mib / 18 Kib ~ 455 BRAM18K equivalents.
        assert budget.memory == (1024 * 1024 * 8) // (18 * 1024)

    def test_default_frequency(self):
        spec = AsicSpec("a", 1, 1, 1.0)
        assert spec.default_frequency_mhz > 0
