"""Functional validation of the architectural transformations.

If H-partitioning or upsample folding changed any output value, the
accelerator would not compute the decoder — these tests pin the two
transformations to the reference kernels bit-for-bit (well, to float
round-off).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.ops import conv2d, upsample_nearest
from repro.runtime.tiled import (
    _partition_bounds,
    conv2d_folded_upsample,
    conv2d_h_partitioned,
    reference_folded_upsample,
)


def random_case(rng, in_c, out_c, size, kernel):
    x = rng.normal(size=(in_c, size, size))
    w = rng.normal(size=(out_c, in_c, kernel, kernel))
    return x, w


class TestPartitionBounds:
    def test_covers_everything_disjointly(self):
        for total in (1, 5, 8, 17):
            for parts in (1, 2, 3, 8):
                bounds = _partition_bounds(total, parts)
                covered = [r for s, e in bounds for r in range(s, e)]
                assert covered == list(range(total))

    def test_near_equal_sizes(self):
        bounds = _partition_bounds(10, 3)
        sizes = [e - s for s, e in bounds]
        assert max(sizes) - min(sizes) <= 1


class TestHPartitioning:
    @settings(max_examples=60, deadline=None)
    @given(
        in_c=st.integers(1, 4),
        out_c=st.integers(1, 4),
        size=st.sampled_from([5, 8, 11]),
        kernel=st.sampled_from([1, 2, 3, 4]),
        stride=st.sampled_from([1, 2]),
        padding=st.sampled_from(["same", "valid"]),
        h=st.sampled_from([1, 2, 3, 8, 64]),
        seed=st.integers(0, 999),
    )
    def test_h_partition_is_exact(
        self, in_c, out_c, size, kernel, stride, padding, h, seed
    ):
        if padding == "valid" and size < kernel:
            return
        rng = np.random.default_rng(seed)
        x, w = random_case(rng, in_c, out_c, size, kernel)
        want = conv2d(x, w, stride=stride, padding=padding)
        got = conv2d_h_partitioned(
            x, w, stride=stride, padding=padding, h=h
        )
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_with_untied_bias(self):
        rng = np.random.default_rng(0)
        x, w = random_case(rng, 3, 2, 8, 3)
        bias = rng.normal(size=(2, 8, 8))
        want = conv2d(x, w, bias=bias)
        got = conv2d_h_partitioned(x, w, bias=bias, h=4)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            conv2d_h_partitioned(
                np.zeros((1, 4, 4)), np.zeros((1, 1, 3, 3)), h=0
            )


class TestFoldedUpsample:
    @settings(max_examples=60, deadline=None)
    @given(
        in_c=st.integers(1, 3),
        out_c=st.integers(1, 3),
        size=st.sampled_from([3, 4, 6]),
        kernel=st.sampled_from([1, 3, 4]),
        scale=st.sampled_from([1, 2, 3]),
        padding=st.sampled_from(["same", "valid"]),
        seed=st.integers(0, 999),
    )
    def test_folding_is_exact(
        self, in_c, out_c, size, kernel, scale, padding, seed
    ):
        if padding == "valid" and size * scale < kernel:
            return
        rng = np.random.default_rng(seed)
        x, w = random_case(rng, in_c, out_c, size, kernel)
        want = reference_folded_upsample(
            x, w, stride=1, padding=padding, scale=scale
        )
        got = conv2d_folded_upsample(
            x, w, stride=1, padding=padding, scale=scale
        )
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_decoder_cau_block_equivalence(self):
        """A real decoder-sized case: conv-after-2x-upsample, untied bias."""
        rng = np.random.default_rng(7)
        x_pre = rng.normal(size=(16, 16, 16))  # pre-upsample 16x16
        w = rng.normal(size=(8, 16, 4, 4))
        bias = rng.normal(size=(8, 32, 32))
        want = conv2d(upsample_nearest(x_pre, 2), w, bias=bias)
        got = conv2d_folded_upsample(x_pre, w, bias=bias, scale=2)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_memory_footprint_claim(self):
        """The folded path never allocates the upsampled tensor."""
        # Indirect check: folding works on inputs whose upsampled form
        # would be large, with identical results on a sampled sub-case.
        rng = np.random.default_rng(1)
        x_pre = rng.normal(size=(4, 64, 64))
        w = rng.normal(size=(2, 4, 4, 4))
        got = conv2d_folded_upsample(x_pre, w, scale=2)
        assert got.shape == (2, 128, 128)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            conv2d_folded_upsample(
                np.zeros((1, 4, 4)), np.zeros((1, 1, 3, 3)), scale=0
            )
