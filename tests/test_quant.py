"""Tests for quantization schemes and tensor quantizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.quantize import quantization_error, quantize_tensor
from repro.quant.schemes import INT8, INT16, QuantScheme, get_scheme


class TestSchemes:
    def test_int8_packs_two_macs_per_dsp(self):
        assert INT8.macs_per_multiplier == 2
        assert INT8.beta == 4

    def test_int16_single_mac_per_dsp(self):
        assert INT16.macs_per_multiplier == 1
        assert INT16.beta == 2

    def test_beta_reproduces_paper_hybriddnn_efficiency(self):
        # HybridDNN scheme 2: 13.1 GOP x 22.0 FPS / (beta x 1024 x 0.2 GHz)
        # must equal the published 70.4 %.
        eff = 13.1 * 22.0 / (INT16.beta * 1024 * 0.2)
        assert eff == pytest.approx(0.704, abs=0.005)

    def test_mixed_width_does_not_pack(self):
        mixed = QuantScheme(name="w8a16", weight_bits=8, activation_bits=16)
        assert mixed.macs_per_multiplier == 1

    def test_byte_helpers(self):
        assert INT8.weight_bytes(100) == 100
        assert INT16.weight_bytes(100) == 200
        assert INT16.activation_bytes(4) == 8

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            QuantScheme(name="bad", weight_bits=0, activation_bits=8)

    def test_registry_lookup(self):
        assert get_scheme("INT8") is INT8
        assert get_scheme("int16") is INT16
        with pytest.raises(KeyError, match="known schemes"):
            get_scheme("fp4")


class TestQuantize:
    def test_roundtrip_of_exact_grid(self):
        x = np.array([-1.0, -0.5, 0.0, 0.5, 1.0])
        q = quantize_tensor(x, 8)
        np.testing.assert_allclose(q.dequantized(), x, atol=q.scale / 2)

    def test_integer_codes_within_range(self):
        x = np.linspace(-3, 3, 100)
        q = quantize_tensor(x, 8)
        assert q.values.max() <= 127
        assert q.values.min() >= -128

    def test_zero_tensor(self):
        q = quantize_tensor(np.zeros(5), 8)
        np.testing.assert_array_equal(q.dequantized(), np.zeros(5))

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), 1)

    def test_int16_error_smaller_than_int8(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        assert quantization_error(x, INT16) < quantization_error(x, INT8)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(max_dims=3, max_side=8),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.sampled_from([4, 8, 12, 16]),
    )
    def test_roundtrip_error_bounded_by_half_scale(self, x, bits):
        q = quantize_tensor(x, bits)
        error = np.max(np.abs(q.dequantized() - x)) if x.size else 0.0
        assert error <= q.scale / 2 + 1e-12
