"""Serving layer: clock, replicas, policies, scheduler, SLOs, determinism."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.devices.fpga import get_device
from repro.fcad.flow import FCad
from repro.serving import (
    AvatarWorkload,
    ReplicaPool,
    get_policy,
    percentile,
    pool_from_result,
    report_from_json,
    report_to_json,
    run_session,
    serve_from_result,
    serve_workload,
)
from repro.serving.clock import now_ms, sleep_ms
from repro.serving.request import DecodeRequest
from repro.sim.runner import FrameLatencyProfile
from tests.conftest import make_tiny_decoder

#: A hand-built latency model: 8 ms cold start, 4 ms/frame steady state —
#: one replica decodes at most 250 FPS once warm.
PROFILE = FrameLatencyProfile(
    finish_ms=(8.0, 12.0, 16.0),
    first_frame_ms=8.0,
    steady_interval_ms=4.0,
    frequency_mhz=200.0,
)


def make_workload(**overrides) -> AvatarWorkload:
    defaults = dict(
        avatars=8,
        frames_per_avatar=10,
        frame_interval_ms=33.3,
        deadline_ms=40.0,
        jitter_ms=3.0,
        seed=0,
    )
    defaults.update(overrides)
    return AvatarWorkload(**defaults)


class TestVirtualClock:
    def test_sleeps_cost_no_wall_time(self):
        async def long_nap():
            await sleep_ms(3_600_000.0)  # one virtual hour
            return now_ms()

        started = time.perf_counter()
        finished_at = run_session(long_nap())
        assert finished_at == pytest.approx(3_600_000.0)
        assert time.perf_counter() - started < 2.0

    def test_concurrent_timers_interleave_deterministically(self):
        async def ticks():
            order: list[str] = []

            async def tick(label, period_ms, count):
                for _ in range(count):
                    await sleep_ms(period_ms)
                    order.append(label)

            await asyncio.gather(tick("a", 10, 3), tick("b", 15, 2))
            return order

        assert run_session(ticks()) == run_session(ticks())


class TestFrameLatencyProfile:
    def test_sampled_from_simulator(self, tiny_plan):
        budget = get_device("Z7045").budget()
        from repro.arch.config import AcceleratorConfig

        config = AcceleratorConfig.uniform(tiny_plan)
        from repro.sim.runner import frame_latency_profile

        from repro.quant.schemes import INT8

        profile = frame_latency_profile(
            tiny_plan,
            config,
            quant=INT8,
            bandwidth_gbps=budget.bandwidth_gbps,
            frames=6,
        )
        assert len(profile.finish_ms) == 6
        # Completion times are monotonically increasing...
        assert list(profile.finish_ms) == sorted(profile.finish_ms)
        # ...and the cold first frame costs at least a steady interval.
        assert profile.first_frame_ms >= profile.steady_interval_ms > 0
        assert profile.steady_fps > 0

    def test_batch_finish_cold_vs_warm(self):
        cold = PROFILE.batch_finish_ms(100.0, 3)
        assert cold == (108.0, 112.0, 116.0)
        warm = PROFILE.batch_finish_ms(100.0, 3, warm=True)
        assert warm == (104.0, 108.0, 112.0)
        with pytest.raises(ValueError):
            PROFILE.batch_finish_ms(0.0, 0)


class TestReplica:
    def test_warm_window_accounting(self):
        pool = ReplicaPool(PROFILE, replicas=1, max_batch=4)
        replica = pool.replicas[0]
        first = replica.service_times(0.0, 2)
        assert first == (8.0, 12.0)
        # Immediately following batch keeps the pipeline warm.
        second = replica.service_times(12.0, 2)
        assert second == (16.0, 20.0)
        # A long idle gap forces a fresh fill.
        third = replica.service_times(100.0, 1)
        assert third == (108.0,)
        assert replica.frames_served == 5
        assert replica.busy_ms == pytest.approx(12.0 + 8.0 + 8.0)

    def test_batch_capacity_enforced(self):
        pool = ReplicaPool(PROFILE, replicas=1, max_batch=2)
        with pytest.raises(ValueError, match="capacity"):
            pool.replicas[0].service_times(0.0, 3)

    def test_pool_reuse_across_sessions_is_clean(self):
        # open() starts every session from scratch: running the same
        # workload twice on one pool reports identical SLOs both times.
        pool = ReplicaPool(PROFILE, replicas=2, max_batch=4)
        first = serve_workload(pool, make_workload(), policy="fifo")
        second = serve_workload(pool, make_workload(), policy="fifo")
        assert report_to_json(first) == report_to_json(second)


class TestPolicies:
    @staticmethod
    def requests(*specs) -> list[DecodeRequest]:
        return [
            DecodeRequest(
                request_id=i,
                avatar_id=avatar,
                frame_index=0,
                arrival_ms=arrival,
                deadline_ms=deadline,
            )
            for i, (avatar, arrival, deadline) in enumerate(specs)
        ]

    def test_fifo_orders_by_arrival(self):
        queue = self.requests((0, 5.0, 100.0), (1, 1.0, 50.0), (2, 3.0, 10.0))
        batch = get_policy("fifo").select(queue, now_ms=6.0, limit=2)
        assert [r.request_id for r in batch] == [1, 2]

    def test_edf_orders_by_deadline(self):
        queue = self.requests((0, 5.0, 100.0), (1, 1.0, 50.0), (2, 3.0, 10.0))
        batch = get_policy("edf").select(queue, now_ms=6.0, limit=2)
        assert [r.request_id for r in batch] == [2, 1]

    def test_fair_round_robins_avatars(self):
        # Avatar 0 flooded the queue first; avatar 1 has one late frame.
        queue = self.requests(
            (0, 0.0, 50.0), (0, 1.0, 50.0), (0, 2.0, 50.0), (1, 3.0, 50.0)
        )
        batch = get_policy("fair").select(queue, now_ms=4.0, limit=2)
        assert sorted(r.avatar_id for r in batch) == [0, 1]

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="known policies"):
            get_policy("lifo")


class TestPercentiles:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_small_sample(self):
        assert percentile([7.0], 99) == 7.0
        assert percentile([3.0, 9.0], 50) == 3.0
        assert percentile([], 99) == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)


class TestServingSession:
    def test_all_frames_served(self):
        pool = ReplicaPool(PROFILE, replicas=2, max_batch=4)
        report = serve_workload(pool, make_workload(), policy="fifo")
        assert report.completed == report.submitted == 80
        assert report.latency_p50_ms > 0
        assert report.latency_p99_ms >= report.latency_p95_ms
        assert report.latency_p95_ms >= report.latency_p50_ms
        assert report.throughput_fps > 0
        assert len(report.replica_utilization) == 2
        assert all(0 <= u <= 1 for u in report.replica_utilization)

    def test_deterministic_at_same_seed(self):
        def run():
            pool = ReplicaPool(PROFILE, replicas=2, max_batch=4)
            return serve_workload(pool, make_workload(), policy="edf")

        assert report_to_json(run()) == report_to_json(run())

    def test_seed_changes_workload(self):
        def run(seed):
            pool = ReplicaPool(PROFILE, replicas=2, max_batch=4)
            return serve_workload(pool, make_workload(seed=seed))

        assert report_to_json(run(0)) != report_to_json(run(1))

    def test_saturated_pool_misses_deadlines(self):
        # Offered: 16 avatars x 30 FPS = 480 FPS against a single replica
        # that tops out at 250 FPS: the queue grows without bound and the
        # deadline-miss SLO must light up.
        pool = ReplicaPool(PROFILE, replicas=1, max_batch=8)
        report = serve_workload(
            pool,
            make_workload(avatars=16, frames_per_avatar=20),
            policy="fifo",
        )
        assert report.completed == 320
        assert report.deadline_misses > 0
        assert report.miss_rate > 0.5
        assert max(report.replica_utilization) > 0.9

    def test_edf_beats_fifo_on_mixed_deadlines(self):
        # Moderate saturation with mixed SLO tiers: EDF reorders so the
        # tight-deadline frames go first while the loose ones still have
        # slack; FIFO makes the tight ones wait behind loose arrivals.
        workload = make_workload(
            avatars=14,
            frames_per_avatar=30,
            jitter_ms=8.0,
            deadline_ms=50.0,
            deadline_tiers=(20.0, 60.0),
        )

        def run(policy):
            pool = ReplicaPool(PROFILE, replicas=2, max_batch=8)
            return serve_workload(pool, workload, policy=policy)

        fifo, edf = run("fifo"), run("edf")
        assert fifo.completed == edf.completed == 420
        assert edf.deadline_misses < fifo.deadline_misses

    def test_batch_window_coalesces(self):
        workload = make_workload(jitter_ms=0.0)

        def run(window):
            pool = ReplicaPool(PROFILE, replicas=1, max_batch=8)
            return serve_workload(
                pool, workload, policy="fifo", batch_window_ms=window
            )

        eager, windowed = run(0.0), run(5.0)
        assert windowed.mean_batch_size > eager.mean_batch_size

    def test_report_json_roundtrip(self):
        pool = ReplicaPool(PROFILE, replicas=2, max_batch=4)
        report = serve_workload(pool, make_workload(), policy="fair")
        clone = report_from_json(report_to_json(report))
        assert clone == report
        payload = report_to_json(report)
        assert '"miss_rate"' in payload and '"throughput_fps"' in payload

    def test_render_mentions_slos(self):
        pool = ReplicaPool(PROFILE, replicas=1, max_batch=4)
        report = serve_workload(pool, make_workload(avatars=2))
        text = report.render()
        assert "p50/p95/p99" in text
        assert "deadline misses (@40 ms)" in text
        assert "replica utilization" in text

    def test_tiered_deadlines_labelled_as_tiers(self):
        pool = ReplicaPool(PROFILE, replicas=1, max_batch=4)
        report = serve_workload(
            pool, make_workload(avatars=2, deadline_tiers=(25.0, 100.0))
        )
        assert report.deadline_tiers_ms == (25.0, 100.0)
        assert "@tiers 25/100 ms" in report.render()

    def test_real_time_mode_counts_session_time(self):
        # A stock loop's time() is an arbitrary monotonic epoch; the
        # session clock must still start at ~0 so durations, arrival
        # pacing, and utilization are session-relative.
        pool = ReplicaPool(PROFILE, replicas=1, max_batch=4)
        workload = make_workload(
            avatars=2,
            frames_per_avatar=3,
            frame_interval_ms=5.0,
            jitter_ms=0.0,
            deadline_ms=100.0,
        )
        report = serve_workload(pool, workload, real_time=True)
        assert report.completed == 6
        # Session spans the workload (>= one frame interval), not the
        # machine's monotonic-clock epoch (minutes-to-days of millis).
        assert 5.0 <= report.duration_ms < 10_000.0
        assert max(report.replica_utilization) > 0.001

    def test_saturation_workload_sizes_from_capacity(self):
        from repro.serving import saturation_workload

        workload = saturation_workload(PROFILE, replicas=2)
        # 0.85 * 2 replicas * 250 FPS / 30 FPS-per-avatar ~= 14 avatars.
        assert workload.avatars == 14
        assert workload.deadline_tiers == (20.0, 60.0)

    def test_canned_workload_is_design_independent(self):
        from repro.serving import canned_workload

        # Unlike saturation_workload, the canned fleet must not depend on
        # any design profile — every DSE candidate sees the same traffic.
        workload = canned_workload(avatars=12, frames_per_avatar=6)
        assert workload.avatars == 12
        assert workload.frames_per_avatar == 6
        assert workload.frame_interval_ms == pytest.approx(1000.0 / 30.0)

    def test_replay_workload_from_bare_profile(self):
        from repro.serving import canned_workload, replay_workload

        workload = canned_workload(avatars=4, frames_per_avatar=5)
        report = replay_workload(PROFILE, workload=workload, replicas=2)
        assert report.completed == workload.total_frames
        assert report.replicas == 2
        assert report.latency_p99_ms > 0

    def test_replay_workload_deterministic(self):
        from repro.serving import canned_workload, replay_workload

        workload = canned_workload(avatars=4, frames_per_avatar=5)
        first = replay_workload(PROFILE, workload=workload)
        second = replay_workload(PROFILE, workload=workload)
        assert first == second


class TestSchedulerRegressions:
    def test_empty_batch_selection_does_not_busy_spin(self):
        # Regression: a policy declining to batch (empty selection) while
        # the queue is non-empty used to make the dispatcher release and
        # immediately re-acquire the replica in a tight loop that never
        # advanced the virtual clock. The scheduler must park until the
        # queue changes, so the session completes with a bounded number
        # of policy polls.
        from repro.serving.policies import FifoPolicy

        class HesitantPolicy(FifoPolicy):
            name = "hesitant"

            def __init__(self):
                self.calls = 0
                self.declined = 0

            def select(self, queue, now_ms, limit):
                self.calls += 1
                if self.calls % 3 == 1:
                    self.declined += 1
                    return []
                return super().select(queue, now_ms, limit)

        policy = HesitantPolicy()
        pool = ReplicaPool(PROFILE, replicas=2, max_batch=8)
        workload = make_workload(avatars=4, frames_per_avatar=6)
        report = serve_workload(pool, workload, policy=policy)
        assert report.completed == report.submitted == 24
        assert policy.declined > 0
        # Bounded polling: at most a few selects per submitted request,
        # not the unbounded spin of the pre-fix dispatcher.
        assert policy.calls < 10 * report.submitted


class TestOverload:
    """Pinned overload behavior: EDF degradation and load shedding."""

    def overload_workload(self, saturation):
        from repro.serving import saturation_workload

        return saturation_workload(PROFILE, replicas=1, saturation=saturation)

    def test_edf_degrades_past_overload_point(self):
        # EDF holds the line near capacity but collapses past ~1.2x
        # overload: the backlog hands every frame a stale deadline, and
        # the miss SLO must measure the cliff.
        def run(saturation):
            pool = ReplicaPool(PROFILE, replicas=1, max_batch=8)
            return serve_workload(
                pool, self.overload_workload(saturation), policy="edf"
            )

        nominal, overloaded = run(0.85), run(1.3)
        assert nominal.miss_rate < 0.05
        assert overloaded.miss_rate > 0.5
        assert overloaded.latency_p99_ms > 4 * nominal.latency_p99_ms

    def test_shedding_bounds_accepted_p99_under_overload(self):
        # The same 1.5x-overload session with admission control: the
        # cluster refuses the excess (shed_rate lights up) and the
        # accepted requests keep a bounded p99 inside the deadline tiers.
        from repro.serving import GroupSpec, serve_cluster

        workload = self.overload_workload(1.5)

        def run(admission):
            return serve_cluster(
                [GroupSpec("only", PROFILE, replicas=1, max_batch=8)],
                workload,
                admission=admission,
            )

        unshielded, shielded = run(None), run(True)
        assert unshielded.shed_rate == 0.0
        assert unshielded.latency_p99_ms > 100.0
        assert shielded.shed_rate > 0.1
        assert shielded.completed + shielded.shed == shielded.submitted
        # Accepted requests stay inside the workload's lax tier budget.
        assert shielded.latency_p99_ms <= max(workload.deadline_tiers)
        assert shielded.latency_p99_ms < unshielded.latency_p99_ms / 4


class TestServeFromResult:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        return FCad(
            network=make_tiny_decoder(),
            device=get_device("Z7045"),
            quant="int8",
        ).run(iterations=2, population=8, seed=0)

    def test_pool_from_result(self, tiny_result):
        pool = pool_from_result(tiny_result, replicas=3, sim_frames=4)
        assert len(pool) == 3
        assert pool.replicas[0].latency.steady_interval_ms > 0

    def test_precomputed_profile_skips_resampling(self, tiny_result):
        pool = pool_from_result(tiny_result, replicas=1, profile=PROFILE)
        assert pool.replicas[0].latency is PROFILE

    def test_batch_replication_scales_capacity(self):
        # A design whose branches each run batch=2 replica pipelines
        # decodes twice as fast as the single-replica simulation ticks:
        # the serving capacity must agree with the simulator's own
        # steady-state measurement, which applies the same scaling.
        from repro.dse.space import Customization
        from repro.sim.runner import simulate

        batched = FCad(
            network=make_tiny_decoder(),
            device=get_device("Z7045"),
            quant="int8",
            customization=Customization(
                batch_sizes=(2, 2), priorities=(1.0, 1.0)
            ),
        ).run(iterations=2, population=8, seed=0)
        profile = batched.frame_latency_profile(frames=8)
        measured = simulate(
            plan=batched.plan,
            config=batched.dse.best_config,
            quant=batched.quant,
            bandwidth_gbps=batched.budget.bandwidth_gbps,
            frequency_mhz=batched.frequency_mhz,
            frames=8,
        )
        assert profile.steady_fps == pytest.approx(measured.fps, rel=0.05)

    def test_end_to_end_deterministic(self, tiny_result):
        def run():
            return serve_from_result(
                tiny_result,
                avatars=4,
                replicas=2,
                policy="edf",
                frames_per_avatar=6,
                seed=0,
                sim_frames=4,
            )

        first, second = run(), run()
        assert report_to_json(first) == report_to_json(second)
        assert first.completed == 24
