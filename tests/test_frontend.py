"""Tests for the torch-like frontend and the declarative spec frontend."""

from __future__ import annotations

import pytest

from repro.frontend.spec import graph_from_spec
from repro.frontend.torchlike import (
    Concat,
    Conv2d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Reshape,
    Sequential,
    Tanh,
    UpsamplingNearest2d,
    cat,
    trace,
)
from repro.ir.graph import GraphError
from repro.ir.layer import BiasMode, TensorShape
from repro.ir import layer as ir
from repro.profiler.network import profile_network


class GeometryBranch(Module):
    """A torch-style module mirroring one decoder branch."""

    def __init__(self):
        self.stack = Sequential(
            Conv2d(4, 16, kernel_size=4, bias=BiasMode.UNTIED),
            LeakyReLU(0.2),
            UpsamplingNearest2d(scale_factor=2),
            Conv2d(16, 3, kernel_size=4, bias=BiasMode.UNTIED),
        )

    def forward(self, z):
        return self.stack(z.reshape(4, 8, 8))


class TwoBranch(Module):
    def __init__(self):
        self.front = Sequential(Conv2d(7, 8, kernel_size=3), ReLU())
        self.left = Conv2d(8, 3, kernel_size=3)
        self.right = Conv2d(8, 2, kernel_size=3)

    def forward(self, z, view):
        x = self.front(cat([z, view]))
        self.left(x)
        return self.right(x)


class TestTorchlike:
    def test_trace_sequential(self):
        graph = trace(GeometryBranch(), {"z": TensorShape(256, 1, 1)})
        shapes = graph.infer_shapes()
        outputs = graph.output_names()
        assert len(outputs) == 1
        assert shapes[outputs[0]] == TensorShape(3, 16, 16)

    def test_trace_multi_branch_with_cat(self):
        graph = trace(
            TwoBranch(),
            {"z": TensorShape(4, 8, 8), "view": TensorShape(3, 8, 8)},
        )
        assert len(graph.output_names()) == 2
        membership = graph.branch_membership()
        shared = [n for n, m in membership.items() if len(m) == 2]
        assert shared  # the front part is shared

    def test_bool_bias_maps_to_modes(self):
        graph = trace(
            Sequential(Conv2d(3, 4, kernel_size=3, bias=False)),
            {"x": TensorShape(3, 8, 8)},
        )
        conv_node = [
            n for n in graph.nodes() if isinstance(n.layer, ir.Conv2d)
        ][0]
        assert conv_node.layer.bias is BiasMode.NONE

    def test_all_module_kinds_trace(self):
        model = Sequential(
            Conv2d(3, 8, kernel_size=3),
            ReLU(),
            MaxPool2d(2),
            Conv2d(8, 8, kernel_size=3),
            Tanh(),
            Flatten(),
            Linear(8 * 4 * 4, 10),
        )
        graph = trace(model, {"x": TensorShape(3, 8, 8)})
        shapes = graph.infer_shapes()
        assert shapes[graph.output_names()[0]] == TensorShape(10, 1, 1)

    def test_reshape_module(self):
        model = Sequential(Reshape(4, 8, 8), Conv2d(4, 2, kernel_size=3))
        graph = trace(model, {"z": TensorShape(256, 1, 1)})
        assert graph.infer_shapes()[graph.output_names()[0]].channels == 2

    def test_concat_module(self):
        class M(Module):
            def forward(self, a, b):
                return Concat()(a, b)

        graph = trace(
            M(), {"a": TensorShape(2, 4, 4), "b": TensorShape(3, 4, 4)}
        )
        assert graph.infer_shapes()[graph.output_names()[0]].channels == 5

    def test_cat_needs_two(self):
        graph_inputs = {"a": TensorShape(2, 4, 4)}

        class M(Module):
            def forward(self, a):
                return cat([a])

        with pytest.raises(ValueError, match="two"):
            trace(M(), graph_inputs)

    def test_traced_profile_matches_builder_equivalent(self, decoder_graph):
        # The traced two-branch toy must profile identically to the same
        # network assembled via GraphBuilder.
        graph = trace(
            TwoBranch(),
            {"z": TensorShape(4, 8, 8), "view": TensorShape(3, 8, 8)},
        )
        profile = profile_network(graph)
        assert profile.total_macs > 0
        assert len(profile.branches) == 2


class TestSpecFrontend:
    def test_simple_spec(self):
        spec = {
            "name": "tiny",
            "nodes": [
                {"name": "x", "op": "input", "shape": [3, 16, 16]},
                {
                    "name": "c1",
                    "op": "conv",
                    "inputs": ["x"],
                    "out_channels": 8,
                    "kernel": 3,
                },
                {"name": "a1", "op": "act", "inputs": ["c1"], "fn": "relu"},
                {"name": "p1", "op": "pool", "inputs": ["a1"], "kernel": 2},
            ],
        }
        graph = graph_from_spec(spec)
        assert graph.infer_shapes()["p1"] == TensorShape(8, 8, 8)

    def test_spec_with_all_ops(self):
        spec = {
            "name": "full",
            "nodes": [
                {"name": "z", "op": "input", "shape": [256, 1, 1]},
                {"name": "v", "op": "input", "shape": [3, 8, 8]},
                {"name": "r", "op": "reshape", "inputs": ["z"], "shape": [4, 8, 8]},
                {"name": "cat", "op": "concat", "inputs": ["r", "v"]},
                {
                    "name": "c",
                    "op": "conv",
                    "inputs": ["cat"],
                    "out_channels": 8,
                    "kernel": 3,
                    "bias": "untied",
                },
                {"name": "u", "op": "upsample", "inputs": ["c"], "scale": 2},
                {"name": "f", "op": "flatten", "inputs": ["u"]},
                {"name": "fc", "op": "linear", "inputs": ["f"], "out_features": 10},
            ],
        }
        graph = graph_from_spec(spec)
        assert graph.infer_shapes()["fc"] == TensorShape(10, 1, 1)
        assert graph.node("c").layer.bias is BiasMode.UNTIED

    def test_unknown_op_rejected(self):
        spec = {
            "nodes": [{"name": "x", "op": "transformer", "shape": [1, 1, 1]}]
        }
        with pytest.raises(GraphError, match="unknown op"):
            graph_from_spec(spec)
