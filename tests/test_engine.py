"""Event-heap engine: equivalence with the coroutine scheduler, traffic
shapes, autoscaling, determinism, and report compatibility."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serving import (
    AutoscalePolicy,
    GroupSpec,
    ReplicaPool,
    canned_workload,
    list_shapes,
    make_trace,
    report_from_json,
    report_to_json,
    saturation_workload,
    serve_cluster,
    serve_trace,
    serve_workload,
    trace_from_workload,
)
from repro.serving.policies import SchedulingPolicy
from repro.sim.runner import FrameLatencyProfile

FAST = FrameLatencyProfile(
    finish_ms=(6.0, 8.0),
    first_frame_ms=6.0,
    steady_interval_ms=2.0,
    frequency_mhz=200.0,
)
BIG = FrameLatencyProfile(
    finish_ms=(8.0, 12.0, 16.0),
    first_frame_ms=8.0,
    steady_interval_ms=4.0,
    frequency_mhz=200.0,
)

EXACT_FIELDS = (
    "policy",
    "avatars",
    "replicas",
    "max_batch",
    "batch_window_ms",
    "submitted",
    "completed",
    "shed",
    "deadline_ms",
    "deadline_tiers_ms",
    "deadline_misses",
    "batches",
    "router",
    "failed",
    "retries",
    "hedges",
    "hedge_wins",
    "failovers",
    "replicas_lost",
    "replicas_replaced",
)
APPROX_FIELDS = (
    "degraded_time_ms",
    "duration_ms",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "latency_mean_ms",
    "latency_max_ms",
    "queue_mean_ms",
    "mean_batch_size",
    "replica_utilization",
    "per_avatar_p99_ms",
)


def assert_reports_match(coroutine, heap):
    """Same SLO report up to the asyncio clock's seconds<->ms round-off.

    Counters must agree exactly; latency statistics to ~1e-9 relative
    (the coroutine path's timestamps round-trip through the event loop's
    second-based clock, the heap engine computes in pure milliseconds).
    """
    for name in EXACT_FIELDS:
        assert getattr(coroutine, name) == getattr(heap, name), name
    for name in APPROX_FIELDS:
        a, b = getattr(coroutine, name), getattr(heap, name)
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9), name
    assert len(coroutine.groups) == len(heap.groups)
    for ga, gb in zip(coroutine.groups, heap.groups):
        for name in (
            "name",
            "policy",
            "transport",
            "replicas",
            "max_batch",
            "batch_window_ms",
            "submitted",
            "shed",
            "completed",
            "deadline_misses",
            "failed",
            "retries",
            "hedges",
            "hedge_wins",
            "failovers",
            "replicas_lost",
            "replicas_replaced",
        ):
            assert getattr(ga, name) == getattr(gb, name), f"group {name}"
        for name in (
            "latency_p50_ms",
            "latency_p99_ms",
            "mean_batch_size",
            "mean_utilization",
        ):
            a, b = getattr(ga, name), getattr(gb, name)
            assert a == pytest.approx(b, rel=1e-9, abs=1e-9), f"group {name}"


# ---------------------------------------------------------------------------
# equivalence with the coroutine scheduler
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["fifo", "edf", "fair"])
def test_single_pool_equivalence(policy):
    workload = canned_workload(
        avatars=12,
        frames_per_avatar=20,
        jitter_ms=6.0,
        deadline_tiers=(20.0, 60.0),
        seed=3,
    )
    coroutine = serve_workload(
        ReplicaPool(BIG, replicas=2, max_batch=8), workload, policy=policy
    )
    heap = serve_trace(
        ReplicaPool(BIG, replicas=2, max_batch=8), workload, policy=policy
    )
    assert heap.engine == "heap" and coroutine.engine == ""
    assert_reports_match(coroutine, heap)


@pytest.mark.parametrize("policy", ["fifo", "edf", "fair"])
def test_saturated_pool_equivalence(policy):
    # Past capacity the queue couples every decision to every earlier
    # one — the regime where a semantics drift would show up instantly.
    workload = saturation_workload(BIG, replicas=2, saturation=1.3, seed=7)
    coroutine = serve_workload(
        ReplicaPool(BIG, replicas=2, max_batch=8), workload, policy=policy
    )
    heap = serve_trace(
        ReplicaPool(BIG, replicas=2, max_batch=8), workload, policy=policy
    )
    assert coroutine.deadline_misses > 0
    assert_reports_match(coroutine, heap)


@pytest.mark.parametrize("router", ["round-robin", "least-loaded", "deadline"])
def test_cluster_equivalence_with_admission(router):
    workload = saturation_workload(BIG, replicas=4, saturation=1.5, seed=11)

    def groups():
        return [
            GroupSpec(
                "latency",
                FAST,
                replicas=1,
                policy="edf",
                batch_window_ms=0.0,
                max_batch=4,
            ),
            GroupSpec(
                "throughput",
                BIG,
                replicas=3,
                policy="fifo",
                batch_window_ms=4.0,
            ),
        ]

    coroutine = serve_cluster(groups(), workload, router=router, admission=True)
    heap = serve_trace(groups(), workload, router=router, admission=True)
    assert coroutine.shed > 0
    assert_reports_match(coroutine, heap)


def test_trace_and_workload_inputs_agree():
    workload = canned_workload(avatars=6, frames_per_avatar=8, jitter_ms=5.0)
    via_workload = serve_trace(
        ReplicaPool(BIG, replicas=1), workload, policy="edf"
    )
    via_trace = serve_trace(
        ReplicaPool(BIG, replicas=1), trace_from_workload(workload), policy="edf"
    )
    assert report_to_json(via_workload) == report_to_json(via_trace)


# ---------------------------------------------------------------------------
# traffic shapes
# ---------------------------------------------------------------------------
def test_trace_from_workload_matches_client_streams():
    workload = canned_workload(
        avatars=5, frames_per_avatar=7, jitter_ms=6.0, deadline_tiers=(25.0, 80.0)
    )
    trace = trace_from_workload(workload)
    assert len(trace) == workload.total_frames
    assert np.all(np.diff(trace.arrival_ms) >= 0)
    # Re-derive one avatar's arrivals straight from its rng stream.
    rng = workload.avatar_rng(2)
    expected, t = [], rng.uniform(0.0, workload.frame_interval_ms)
    for _ in range(workload.frames_per_avatar):
        expected.append(t)
        t += workload.frame_interval_ms + rng.uniform(
            -workload.jitter_ms, workload.jitter_ms
        )
    got = sorted(trace.arrival_ms[trace.avatar_id == 2].tolist())
    assert got == pytest.approx(sorted(expected))
    assert set(trace.deadline_rel_ms[trace.avatar_id == 2]) == {25.0}
    assert set(trace.deadline_rel_ms[trace.avatar_id == 3]) == {80.0}


def test_shapes_are_deterministic_and_sorted():
    assert list_shapes() == ["diurnal", "flash", "steady"]
    for shape in list_shapes():
        a = make_trace(500, 10.0, shape=shape, avatar_fps=5.0, seed=9)
        b = make_trace(500, 10.0, shape=shape, avatar_fps=5.0, seed=9)
        assert np.array_equal(a.arrival_ms, b.arrival_ms)
        assert np.array_equal(a.avatar_id, b.avatar_id)
        assert np.all(np.diff(a.arrival_ms) >= 0)
        assert a.shape == shape
        assert a.arrival_ms.min() >= 0.0


def test_steady_churn_cuts_sessions_short():
    full = make_trace(200, 10.0, shape="steady", avatar_fps=10.0, seed=1)
    churny = make_trace(
        200, 10.0, shape="steady", avatar_fps=10.0, seed=1, churn=0.5
    )
    assert churny.requests < full.requests
    # A churned avatar's stream neither starts at 0 nor spans the session.
    last_avatar = churny.arrival_ms[churny.avatar_id == 199]
    assert last_avatar.min() > 1000.0 or last_avatar.max() < 9000.0


def test_diurnal_concurrency_peaks_mid_session():
    trace = make_trace(2000, 60.0, shape="diurnal", avatar_fps=2.0, seed=4)
    edges = np.linspace(0.0, 60_000.0, 7)
    counts, _ = np.histogram(trace.arrival_ms, bins=edges)
    middle = counts[2] + counts[3]
    tails = counts[0] + counts[-1]
    assert middle > 2 * tails


def test_flash_crowd_spikes_after_ramp():
    trace = make_trace(
        1000, 20.0, shape="flash", avatar_fps=5.0, seed=6, base=0.2
    )
    before = np.count_nonzero(trace.arrival_ms < 5_000.0)
    during = np.count_nonzero(
        (trace.arrival_ms >= 6_000.0) & (trace.arrival_ms < 11_000.0)
    )
    assert during > 3 * before


def test_make_trace_validation():
    with pytest.raises(KeyError):
        make_trace(10, 1.0, shape="tsunami")
    with pytest.raises(ValueError):
        make_trace(0, 1.0)
    with pytest.raises(ValueError):
        make_trace(10, 1.0, jitter_ms=1000.0, avatar_fps=30.0)


# ---------------------------------------------------------------------------
# autoscaling
# ---------------------------------------------------------------------------
def test_autoscale_grows_and_drains_the_fleet():
    trace = make_trace(
        4000, 20.0, shape="flash", avatar_fps=2.0, deadline_ms=100.0,
        jitter_ms=50.0, seed=5,
    )
    spec = GroupSpec("fleet", BIG, replicas=1, policy="edf", max_batch=8)
    report = serve_trace(
        spec,
        trace,
        autoscale=AutoscalePolicy(
            check_interval_ms=500.0, warmup_ms=1000.0, max_replicas=12
        ),
    )
    assert report.scale_ups > 0
    assert report.scale_downs > 0
    assert report.peak_replicas > 1
    assert report.completed == report.submitted  # drained, nothing lost
    assert report.groups[0].scale_ups == report.scale_ups
    # The report's utilization covers every replica that ever served.
    assert report.replicas == len(report.replica_utilization)
    assert report.replicas >= report.peak_replicas


def test_autoscale_beats_static_underprovisioning():
    trace = make_trace(
        3000, 20.0, shape="flash", avatar_fps=2.0, deadline_ms=60.0,
        jitter_ms=50.0, seed=8,
    )
    spec = GroupSpec("fleet", BIG, replicas=1, policy="edf", max_batch=8)
    static = serve_trace(spec, trace)
    scaled = serve_trace(
        spec,
        trace,
        autoscale=AutoscalePolicy(check_interval_ms=500.0, warmup_ms=1000.0),
    )
    assert scaled.miss_rate < static.miss_rate


def test_autoscale_warmup_is_charged():
    # With a long provisioning delay the same overload misses more than
    # with a short one: cold fill and warm-up are not free capacity.
    trace = make_trace(
        2000, 12.0, shape="flash", avatar_fps=2.0, deadline_ms=60.0,
        jitter_ms=50.0, seed=10,
    )
    spec = GroupSpec("fleet", BIG, replicas=1, policy="edf", max_batch=8)
    fast = serve_trace(
        spec, trace,
        autoscale=AutoscalePolicy(check_interval_ms=500.0, warmup_ms=200.0),
    )
    slow = serve_trace(
        spec, trace,
        autoscale=AutoscalePolicy(check_interval_ms=500.0, warmup_ms=6000.0),
    )
    assert slow.deadline_misses > fast.deadline_misses


def test_autoscale_validation():
    with pytest.raises(ValueError):
        AutoscalePolicy(check_interval_ms=0.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(target_utilization=1.5)
    with pytest.raises(ValueError):
        AutoscalePolicy(min_replicas=5, max_replicas=2)


# ---------------------------------------------------------------------------
# determinism and guard rails
# ---------------------------------------------------------------------------
def test_heap_sessions_are_bit_identical():
    def run():
        trace = make_trace(
            5000, 15.0, shape="diurnal", avatar_fps=2.0, deadline_ms=80.0,
            jitter_ms=100.0, seed=12,
        )
        spec = GroupSpec("fleet", BIG, replicas=1, policy="edf", max_batch=8)
        return report_to_json(
            serve_trace(
                spec,
                trace,
                admission=True,
                autoscale=AutoscalePolicy(
                    check_interval_ms=500.0, warmup_ms=1000.0
                ),
            )
        )

    assert run() == run()


def test_engine_rejects_unsupported_configurations():
    workload = canned_workload(avatars=2, frames_per_avatar=2)

    class WeirdPolicy(SchedulingPolicy):
        name = "weird"

        def select(self, queue, now_ms, limit):  # pragma: no cover
            return list(queue)[:limit]

    with pytest.raises(ValueError, match="built-in policies"):
        serve_trace(
            GroupSpec("g", BIG, policy=WeirdPolicy()), workload
        )
    with pytest.raises(ValueError, match="in-process"):
        serve_trace(GroupSpec("g", BIG, transport="socket"), workload)
    with pytest.raises(ValueError, match="GroupSpec"):
        serve_trace(ReplicaPool(BIG), workload, admission=True)
    with pytest.raises(ValueError, match="unique"):
        serve_trace(
            [GroupSpec("g", BIG), GroupSpec("g", FAST)], workload
        )


# ---------------------------------------------------------------------------
# report JSON compatibility
# ---------------------------------------------------------------------------
#: A serving-report payload exactly as PR 5 serialized it — no engine,
#: shape, or autoscale fields. Archived CI artifacts look like this and
#: must keep loading as the record grows.
PR5_REPORT_JSON = json.dumps(
    {
        "policy": "cluster(deadline)",
        "avatars": 6,
        "replicas": 3,
        "max_batch": 8,
        "batch_window_ms": 0.0,
        "submitted": 30,
        "completed": 30,
        "duration_ms": 177.80121983236802,
        "latency_p50_ms": 3.962195783627621,
        "latency_p95_ms": 6.0,
        "latency_p99_ms": 6.0,
        "latency_mean_ms": 4.089158100816489,
        "latency_max_ms": 6.0,
        "queue_mean_ms": 0.6891581008164895,
        "deadline_ms": 50.0,
        "deadline_tiers_ms": [20.0, 60.0],
        "deadline_misses": 0,
        "batches": 29,
        "mean_batch_size": 1.0344827586206897,
        "replica_utilization": [0.5624258376533106, 0.0, 0.0],
        "per_avatar_p99_ms": [
            6.0,
            4.724120737110255,
            6.0,
            5.70612977404147,
            6.0,
            6.0,
        ],
        "shed": 0,
        "router": "deadline",
        "groups": [
            {
                "name": "latency",
                "policy": "edf",
                "transport": "inprocess",
                "replicas": 1,
                "max_batch": 4,
                "batch_window_ms": 0.0,
                "submitted": 30,
                "shed": 0,
                "completed": 30,
                "deadline_misses": 0,
                "latency_p50_ms": 3.962195783627621,
                "latency_p99_ms": 6.0,
                "mean_batch_size": 1.0344827586206897,
                "mean_utilization": 0.5624258376533106,
                "shed_rate": 0.0,
                "miss_rate": 0.0,
            },
            {
                "name": "throughput",
                "policy": "fifo",
                "transport": "inprocess",
                "replicas": 2,
                "max_batch": 8,
                "batch_window_ms": 4.0,
                "submitted": 0,
                "shed": 0,
                "completed": 0,
                "deadline_misses": 0,
                "latency_p50_ms": 0.0,
                "latency_p99_ms": 0.0,
                "mean_batch_size": 0.0,
                "mean_utilization": 0.0,
                "shed_rate": 0.0,
                "miss_rate": 0.0,
            },
        ],
        "miss_rate": 0.0,
        "shed_rate": 0.0,
        "throughput_fps": 168.72775129599316,
        "mean_utilization": 0.18747527921777019,
    }
)


def test_pr5_report_fixture_still_loads():
    report = report_from_json(PR5_REPORT_JSON)
    assert report.policy == "cluster(deadline)"
    assert report.submitted == 30 and report.shed == 0
    assert report.groups[0].name == "latency"
    # The fields added since default cleanly.
    assert report.engine == "" and report.shape == ""
    assert report.scale_ups == 0 and report.scale_downs == 0
    assert report.peak_replicas == 0
    assert report.groups[0].scale_ups == 0
    # Chaos-era counters (this PR) default too: a pre-chaos payload is a
    # fault-free run.
    assert report.failed == 0 and report.retries == 0
    assert report.hedges == 0 and report.hedge_wins == 0
    assert report.failovers == 0
    assert report.replicas_lost == 0 and report.replicas_replaced == 0
    assert report.degraded_time_ms == 0.0
    assert report.groups[0].failed == 0
    assert report.groups[0].retries == 0
    assert report.groups[0].replicas_lost == 0
    assert report.groups[0].degraded_time_ms == 0.0
    # And it keeps round-tripping through the current serializer.
    assert report_from_json(report_to_json(report)) == report


def test_new_engine_fields_round_trip():
    trace = make_trace(
        500, 5.0, shape="flash", avatar_fps=5.0, jitter_ms=20.0, seed=2
    )
    report = serve_trace(
        GroupSpec("fleet", BIG, replicas=1, policy="edf"),
        trace,
        admission=True,
        autoscale=AutoscalePolicy(check_interval_ms=500.0, warmup_ms=500.0),
    )
    loaded = report_from_json(report_to_json(report))
    assert loaded == report
    assert loaded.engine == "heap"
    assert loaded.shape == "flash"
    assert loaded.scale_ups == report.scale_ups
    assert loaded.peak_replicas == report.peak_replicas
    assert loaded.groups[0].scale_downs == report.groups[0].scale_downs
