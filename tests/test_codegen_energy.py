"""Tests for HLS code generation and the energy model."""

from __future__ import annotations

import json

import pytest

from repro.arch.config import AcceleratorConfig, BranchConfig
from repro.arch.elastic import ElasticAccelerator
from repro.codegen.hls import (
    generate_project,
    generate_top_source,
    generate_unit_source,
    unit_function_name,
)
from repro.construction.reorg import build_pipeline_plan
from repro.perf.energy import estimate_energy
from repro.perf.estimator import evaluate
from repro.quant.schemes import INT8, INT16
from tests.conftest import make_tiny_decoder


@pytest.fixture(scope="module")
def accelerator(decoder_plan):
    from repro.dse.space import get_pf

    branches = []
    for pipeline in decoder_plan.branches:
        branches.append(
            BranchConfig(
                batch_size=1,
                stages=tuple(
                    get_pf(s.stage, 16) for s in pipeline.stages
                ),
            )
        )
    config = AcceleratorConfig(branches=tuple(branches))
    return ElasticAccelerator(decoder_plan, config, INT8)


class TestUnitCodegen:
    def test_unroll_factors_match_config(self, accelerator):
        unit = accelerator.unit(1, 3)  # conv9
        source = generate_unit_source(unit, INT8)
        cfg = unit.config
        assert f"for (int op = 0; op < {cfg.kpf}; ++op)" in source
        assert f"for (int ip = 0; ip < {cfg.cpf}; ++ip)" in source
        assert f"for (int e = 0; e < {cfg.h}; ++e)" in source
        assert f"cyclic factor={cfg.kpf} dim=1" in source
        assert f"cyclic factor={cfg.cpf} dim=2" in source

    def test_loop_bounds_match_stage(self, accelerator):
        unit = accelerator.unit(0, 2)  # conv3
        stage = unit.planned.stage
        source = generate_unit_source(unit, INT8)
        assert f"r < {stage.conv_height}" in source
        assert f"c < {stage.conv_width}" in source
        assert f"ky = 0; ky < {stage.kernel}" in source

    def test_untied_bias_streams(self, accelerator):
        unit = accelerator.unit(0, 0)  # conv1: untied bias
        source = generate_unit_source(unit, INT8)
        assert "bias_stream" in source
        assert "untied, streamed" in source

    def test_tied_bias_is_array(self, accelerator):
        # The 1024x1024 texture conv carries a tied bias.
        texture = accelerator.unit(1, 7)
        source = generate_unit_source(texture, INT8)
        assert "bias_stream" not in source
        assert "const ap_int<8> bias[" in source

    def test_folded_upsample_addressing(self, accelerator):
        unit = accelerator.unit(1, 1)  # conv7: upsample_in=2
        source = generate_unit_source(unit, INT8)
        assert "/ 2;" in source
        assert "replicate-read addressing" in source

    def test_bitwidths_follow_quant(self, accelerator, decoder_plan):
        unit16 = ElasticAccelerator(
            decoder_plan, accelerator.config, INT16
        ).unit(0, 0)
        source = generate_unit_source(unit16, INT16)
        assert "ap_int<16>" in source


class TestTopCodegen:
    def test_one_call_per_unit(self, accelerator):
        source = generate_top_source(accelerator)
        for unit in accelerator.units():
            assert f"{unit_function_name(unit)}(" in source

    def test_dataflow_pragma(self, accelerator):
        assert "#pragma HLS DATAFLOW" in generate_top_source(accelerator)

    def test_fork_gets_two_fifos(self, accelerator):
        source = generate_top_source(accelerator)
        # conv10's output feeds both conv11 (Br.2) and warp_field (Br.3).
        assert "fifo_conv10_to_conv11" in source
        assert "fifo_conv10_to_warp_field" in source

    def test_external_ports(self, accelerator):
        source = generate_top_source(accelerator)
        assert "in_z" in source and "in_view" in source
        for terminal in ("geometry", "texture", "warp_field"):
            assert f"out_{terminal}" in source


class TestProjectGeneration:
    def test_writes_all_files(self, accelerator, tmp_path):
        written = generate_project(accelerator, tmp_path / "design")
        names = {p.name for p in written}
        assert "fcad_top.cpp" in names
        assert "design.json" in names
        assert "README.md" in names
        assert len([n for n in names if n.startswith("stage_")]) == 15

    def test_design_json_roundtrips(self, accelerator, tmp_path):
        written = generate_project(accelerator, tmp_path / "d2")
        config_path = next(p for p in written if p.name == "design.json")
        payload = json.loads(config_path.read_text())
        assert len(payload["branches"]) == 3

    def test_deterministic(self, accelerator, tmp_path):
        a = generate_top_source(accelerator)
        b = generate_top_source(accelerator)
        assert a == b


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def setup(self):
        plan = build_pipeline_plan(make_tiny_decoder())
        config = AcceleratorConfig.uniform(plan)
        perf = evaluate(plan, config, INT8, 200.0)
        return plan, config, perf

    def test_energy_positive_and_decomposed(self, setup):
        plan, config, perf = setup
        report = estimate_energy(plan, config, INT8, perf)
        for branch in report.branches:
            assert branch.compute_mj > 0
            assert branch.sram_mj > 0
            assert branch.total_mj == pytest.approx(
                branch.compute_mj + branch.sram_mj + branch.dram_mj
            )

    def test_power_scales_with_fps(self, setup):
        plan, config, perf = setup
        report = estimate_energy(plan, config, INT8, perf)
        assert report.dynamic_w == pytest.approx(
            report.dynamic_mj_per_frame * 1e-3 * perf.fps
        )
        assert report.total_w > report.dynamic_w  # static adds on top

    def test_int16_costs_more_energy(self, setup):
        plan, config, _ = setup
        perf8 = evaluate(plan, config, INT8, 200.0)
        perf16 = evaluate(plan, config, INT16, 200.0)
        e8 = estimate_energy(plan, config, INT8, perf8)
        e16 = estimate_energy(plan, config, INT16, perf16)
        assert (
            e16.dynamic_mj_per_frame > 1.5 * e8.dynamic_mj_per_frame
        )

    def test_decoder_energy_magnitude(self, decoder_plan):
        """The full decoder should land in the headset-plausible range."""
        config = AcceleratorConfig.uniform(decoder_plan, batch_size=1)
        perf = evaluate(decoder_plan, config, INT8, 200.0)
        report = estimate_energy(decoder_plan, config, INT8, perf)
        # ~6.8 GMAC/frame at ~0.35 pJ/MAC plus memory: single-digit mJ.
        assert 1.0 < report.dynamic_mj_per_frame < 50.0

    def test_render(self, setup):
        plan, config, perf = setup
        text = estimate_energy(plan, config, INT8, perf).render()
        assert "FPS/W" in text


class TestCommonHeader:
    def test_common_header_generated(self, accelerator, tmp_path):
        from repro.codegen.hls import generate_project

        written = generate_project(accelerator, tmp_path / "d3")
        common = next(p for p in written if p.name == "fcad_common.h")
        text = common.read_text()
        assert "ACT_LEAKY_RELU" in text
        assert "ap_int<8>" in text  # int8 activations
        assert "#pragma once" in text

    def test_header_bitwidths_follow_quant(self, decoder_plan, accelerator):
        from repro.codegen.hls import generate_common_header

        text16 = generate_common_header(INT16)
        assert "ap_int<16>" in text16
        assert "ap_int<48>" in text16  # 16+16+16 accumulator


class TestEnergyStudyDriver:
    def test_quick_energy_study(self):
        from repro.experiments.energy import run_energy_study

        result = run_energy_study(
            iterations=2,
            population=10,
            devices=("Z7045",),
            quants=("int8",),
        )
        report = result.cases["Z7045/int8"]
        assert report.total_w > 0
        assert "Energy study" in result.render()
