"""Tests for accelerator configuration types and the elastic architecture."""

from __future__ import annotations

import pytest

from repro.arch.config import (
    AcceleratorConfig,
    BranchConfig,
    ConfigError,
    StageConfig,
)
from repro.arch.elastic import ElasticAccelerator
from repro.quant.schemes import INT8


class TestStageConfig:
    def test_pf_is_product(self):
        assert StageConfig(cpf=4, kpf=8, h=2).pf == 64

    def test_defaults_are_one(self):
        assert StageConfig().pf == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            StageConfig(cpf=0)

    def test_validate_against_stage_bounds(self, decoder_plan):
        planned = decoder_plan.branches[0].stages[0]  # conv1: 4 -> 128 @ 8x8
        StageConfig(cpf=4, kpf=128, h=8).validate_for(planned)
        with pytest.raises(ConfigError, match="cpf"):
            StageConfig(cpf=5).validate_for(planned)
        with pytest.raises(ConfigError, match="kpf"):
            StageConfig(kpf=129).validate_for(planned)
        with pytest.raises(ConfigError, match="h="):
            StageConfig(h=9).validate_for(planned)


class TestAcceleratorConfig:
    def test_uniform_matches_plan_shape(self, decoder_plan):
        config = AcceleratorConfig.uniform(decoder_plan)
        assert config.num_branches == 3
        config.validate_for(decoder_plan)

    def test_branch_count_mismatch(self, decoder_plan, tiny_plan):
        config = AcceleratorConfig.uniform(tiny_plan)
        with pytest.raises(ConfigError, match="branches"):
            config.validate_for(decoder_plan)

    def test_stage_count_mismatch(self, decoder_plan):
        config = AcceleratorConfig.uniform(decoder_plan)
        broken = AcceleratorConfig(
            branches=(
                BranchConfig(batch_size=1, stages=config.branches[0].stages[:-1]),
                config.branches[1],
                config.branches[2],
            )
        )
        with pytest.raises(ConfigError, match="stages"):
            broken.validate_for(decoder_plan)

    def test_stage_accessor(self, decoder_plan):
        config = AcceleratorConfig.uniform(decoder_plan)
        assert config.stage(1, 3) == StageConfig()

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigError):
            BranchConfig(batch_size=-1, stages=())


class TestElasticAccelerator:
    def test_grid_matches_plan(self, decoder_plan):
        acc = ElasticAccelerator(
            decoder_plan, AcceleratorConfig.uniform(decoder_plan), INT8
        )
        assert acc.num_branches == 3
        assert [len(row) for row in acc.rows] == [6, 8, 1]

    def test_unit_positions(self, decoder_plan):
        acc = ElasticAccelerator(
            decoder_plan, AcceleratorConfig.uniform(decoder_plan), INT8
        )
        unit = acc.unit(1, 3)
        assert unit.position == (1, 3)
        assert unit.planned.name == "conv9"

    def test_unit_engine_structure(self, decoder_plan):
        config = AcceleratorConfig.uniform(decoder_plan)
        branches = list(config.branches)
        stages = list(branches[0].stages)
        stages[0] = StageConfig(cpf=2, kpf=4, h=8)
        branches[0] = BranchConfig(batch_size=1, stages=tuple(stages))
        acc = ElasticAccelerator(
            decoder_plan, AcceleratorConfig(branches=tuple(branches)), INT8
        )
        unit = acc.unit(0, 0)
        assert unit.num_engines == 8
        assert unit.pes_per_engine == 4
        assert unit.macs_per_pe == 2

    def test_describe_lists_all_units(self, decoder_plan):
        acc = ElasticAccelerator(
            decoder_plan, AcceleratorConfig.uniform(decoder_plan), INT8
        )
        text = acc.describe()
        assert "(1,1)" in text and "(3,1)" in text
        assert "texture" in text

    def test_units_flat_enumeration(self, decoder_plan):
        acc = ElasticAccelerator(
            decoder_plan, AcceleratorConfig.uniform(decoder_plan), INT8
        )
        assert len(acc.units()) == 15
