"""Tests for simulation statistics recording and timeline rendering."""

from __future__ import annotations

import pytest

from repro.arch.config import AcceleratorConfig
from repro.construction.reorg import build_pipeline_plan
from repro.quant.schemes import INT8
from repro.sim.pipeline import PipelineSimulator
from repro.sim.stats import MAX_RECORDED_INTERVALS, SimStats, StageStats
from repro.sim.timeline import render_timeline
from tests.conftest import make_chain, make_tiny_decoder


@pytest.fixture(scope="module")
def chain_stats():
    plan = build_pipeline_plan(make_chain(depth=3))
    sim = PipelineSimulator(plan, AcceleratorConfig.uniform(plan), INT8, 12.8, 200.0)
    return sim.run(frames=4)


class TestIntervalRecording:
    def test_intervals_recorded_for_every_stage(self, chain_stats):
        for stage in chain_stats.stages.values():
            assert stage.busy_intervals
            for start, end in stage.busy_intervals:
                assert end > start >= 0

    def test_intervals_sum_to_busy_cycles(self, chain_stats):
        for stage in chain_stats.stages.values():
            if len(stage.busy_intervals) >= MAX_RECORDED_INTERVALS:
                continue
            total = sum(e - s for s, e in stage.busy_intervals)
            # Busy cycles exclude DRAM-stall tails inside an interval.
            assert total >= stage.busy_cycles - 1e-6

    def test_interval_cap(self):
        stage = StageStats(name="s")
        for i in range(MAX_RECORDED_INTERVALS + 10):
            stage.record_interval(i, i + 0.5)
        assert len(stage.busy_intervals) == MAX_RECORDED_INTERVALS

    def test_utilization_property(self):
        stage = StageStats(name="s", busy_cycles=60.0, input_stall_cycles=40.0)
        assert stage.utilization == pytest.approx(0.6)
        assert StageStats(name="e").utilization == 0.0


class TestTimeline:
    def test_renders_one_row_per_stage(self, chain_stats):
        text = render_timeline(chain_stats, width=40)
        lines = text.splitlines()
        assert len(lines) == 1 + len(chain_stats.stages)
        for line in lines[1:]:
            assert line.endswith("%")

    def test_bottleneck_stage_is_darkest(self):
        plan = build_pipeline_plan(make_tiny_decoder())
        sim = PipelineSimulator(
            plan, AcceleratorConfig.uniform(plan), INT8, 12.8, 200.0
        )
        stats = sim.run(frames=4)
        text = render_timeline(stats, width=50)
        busiest = max(
            stats.stages.values(), key=lambda s: s.busy_cycles
        ).name
        row = next(ln for ln in text.splitlines() if ln.startswith(busiest))
        assert row.count("#") > 20

    def test_width_validation(self, chain_stats):
        with pytest.raises(ValueError):
            render_timeline(chain_stats, width=4)

    def test_empty_stats(self):
        assert "empty" in render_timeline(SimStats())
