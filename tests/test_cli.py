"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.ir.serialize import graph_to_json
from tests.conftest import make_tiny_decoder


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestListing:
    def test_models(self, capsys):
        out = run_cli(capsys, "models")
        assert "codec_avatar_decoder" in out
        assert "vgg16" in out

    def test_devices(self, capsys):
        out = run_cli(capsys, "devices")
        assert "ZU9CG" in out and "2520" in out


class TestProfile:
    def test_zoo_model(self, capsys):
        out = run_cli(capsys, "profile", "alexnet")
        assert "Branch profile" in out

    def test_json_model(self, capsys, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(graph_to_json(make_tiny_decoder()))
        out = run_cli(capsys, "profile", str(path))
        assert "tiny_decoder" in out

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["profile", "resnet152"])


class TestExplore:
    def test_explore_with_artifacts(self, capsys, tmp_path):
        config_path = tmp_path / "cfg.json"
        report_path = tmp_path / "report.md"
        out = run_cli(
            capsys,
            "explore",
            "tiny_yolo",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "10",
            "--save-config", str(config_path),
            "--report", str(report_path),
        )
        assert "F-CAD generated accelerator" in out
        payload = json.loads(config_path.read_text())
        assert payload["branches"]
        assert report_path.read_text().startswith("# F-CAD design report")

    def test_explore_with_customization(self, capsys, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(graph_to_json(make_tiny_decoder()))
        out = run_cli(
            capsys,
            "explore",
            str(path),
            "--device", "Z7045",
            "--batch", "1,2",
            "--priority", "1,2",
            "--iterations", "2",
            "--population", "10",
        )
        assert "Br.2" in out

    def test_explore_workers(self, capsys):
        out = run_cli(
            capsys,
            "explore",
            "tiny_yolo",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--workers", "2",
        )
        assert "F-CAD generated accelerator" in out

    def test_explore_sweep(self, capsys):
        out = run_cli(
            capsys,
            "explore",
            "tiny_yolo",
            "--sweep", "Z7045,ZU17EG",
            "--iterations", "2",
            "--population", "8",
        )
        assert "Batch sweep results" in out
        # One row per device in the grid.
        assert out.count("tiny_yolo") >= 2

    def test_explore_asic(self, capsys):
        out = run_cli(
            capsys,
            "explore",
            "alexnet",
            "--asic-macs", "512",
            "--iterations", "2",
            "--population", "10",
        )
        assert "512" in out

    def test_explore_reports_objective_and_oracle_stats(self, capsys, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(graph_to_json(make_tiny_decoder()))
        out = run_cli(
            capsys,
            "explore",
            str(path),
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
        )
        assert "objective: paper(alpha=0.05)" in out
        assert "analytical" in out

    def test_explore_alpha_flag(self, capsys, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(graph_to_json(make_tiny_decoder()))
        out = run_cli(
            capsys,
            "explore",
            str(path),
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--alpha", "0.5",
        )
        assert "objective: paper(alpha=0.5)" in out

    def test_explore_slo_rerank_serving(self, capsys, tmp_path):
        """A seeded --objective slo --rerank serving search completes and
        reports per-stage oracle invocation counts plus replayed SLOs."""
        path = tmp_path / "net.json"
        path.write_text(graph_to_json(make_tiny_decoder()))
        out = run_cli(
            capsys,
            "explore",
            str(path),
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--seed", "0",
            "--objective", "slo",
            "--rerank", "serving",
            "--rerank-top-k", "2",
        )
        assert "objective: slo(" in out
        assert "oracle stages:" in out
        assert "serving" in out and "invocations" in out
        assert "p99" in out and "deadline-miss" in out

    def test_explore_sweep_with_objective(self, capsys):
        out = run_cli(
            capsys,
            "explore",
            "tiny_yolo",
            "--sweep", "Z7045,ZU17EG",
            "--iterations", "2",
            "--population", "8",
            "--objective", "slo",
        )
        assert "Batch sweep results" in out


class TestValidation:
    @pytest.mark.parametrize("value", ["0", "-2", "2.5", "four"])
    def test_workers_rejects_bad_values(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "tiny_yolo", "--workers", value])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_iterations_population_must_be_positive(self, capsys, value):
        for flag in ("--iterations", "--population"):
            with pytest.raises(SystemExit):
                main(["explore", "tiny_yolo", flag, value])
            assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-0.5", "nan-ish"])
    def test_alpha_rejects_nonpositive_values(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "tiny_yolo", "--alpha", value])
        assert excinfo.value.code == 2
        assert "positive number" in capsys.readouterr().err

    def test_rerank_rejects_unknown_oracles(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "tiny_yolo", "--rerank", "quantum"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("sweep", ["", "Z7045,,ZU17EG", ","])
    def test_sweep_rejects_malformed_lists(self, capsys, sweep):
        assert main(["explore", "tiny_yolo", "--sweep", sweep]) == 2
        err = capsys.readouterr().err
        assert "comma-separated device list" in err

    def test_sweep_rejects_unknown_devices(self, capsys):
        assert main(["explore", "tiny_yolo", "--sweep", "Z7045,ZU99"]) == 2
        err = capsys.readouterr().err
        assert "unknown device(s)" in err and "ZU99" in err

    def test_explore_surfaces_cache_stats(self, capsys):
        out = run_cli(
            capsys,
            "explore",
            "tiny_yolo",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
        )
        assert "DSE cache:" in out
        assert "Algorithm-2 solves" in out
        assert "stage-memo hits" in out
        assert "DSE phases:" in out

    def test_explore_profile_prints_hotspots(self, capsys):
        out = run_cli(
            capsys,
            "explore",
            "tiny_yolo",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--profile",
        )
        assert "search profile (top 20 by cumulative time)" in out
        assert "cumtime" in out  # pstats table actually rendered

    def test_explore_cache_file_warm_start(self, capsys, tmp_path):
        cache_file = str(tmp_path / "dse.sqlite")
        case = [
            "explore", "tiny_yolo",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--cache-file", cache_file,
        ]
        cold = run_cli(capsys, *case)
        assert ": 0 entries warm" in cold
        assert "new entries persisted" in cold
        warm = run_cli(capsys, *case)
        assert ": 0 entries warm" not in warm
        # Every bucket came from the file: nothing was re-solved.
        assert ", 0 Algorithm-2 solves" in warm


class TestServe:
    SERVE = [
        "serve",
        "--device", "Z7045",
        "--iterations", "2",
        "--population", "8",
        "--avatars", "4",
        "--replicas", "2",
        "--frames", "5",
        "--sim-frames", "4",
    ]

    def test_serve_defaults_to_decoder(self, capsys):
        out = run_cli(capsys, *self.SERVE, "--policy", "edf")
        assert "Serving report (edf)" in out
        assert "deadline misses" in out

    def test_serve_bit_identical_across_runs(self, capsys):
        first = run_cli(capsys, *self.SERVE, "--policy", "edf", "--seed", "0")
        second = run_cli(capsys, *self.SERVE, "--policy", "edf", "--seed", "0")
        assert first == second

    def test_serve_writes_json(self, capsys, tmp_path):
        from repro.serving import report_from_json

        path = tmp_path / "serving.json"
        run_cli(
            capsys,
            *self.SERVE,
            "--policy", "fair",
            "--deadline-tiers", "25,100",
            "--json", str(path),
        )
        report = report_from_json(path.read_text())
        assert report.policy == "fair"
        assert report.completed == 4 * 5

    def test_serve_rejects_bad_avatars(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--avatars", "0"])
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("tiers", ["25,abc", "", "25,-5", "0"])
    def test_serve_rejects_bad_deadline_tiers(self, capsys, tiers):
        # Validated before the design search runs, with a friendly error.
        assert main(["serve", "--deadline-tiers", tiers]) == 2
        assert "--deadline-tiers" in capsys.readouterr().err

    def test_serve_rejects_oversized_jitter(self, capsys):
        assert main(["serve", "--jitter-ms", "40"]) == 2
        assert "frame interval" in capsys.readouterr().err

    def test_serve_rejects_bad_replicas_and_duration(self, capsys):
        # Same friendly errors explore's --workers/--iterations have.
        with pytest.raises(SystemExit):
            main(["serve", "--replicas", "0"])
        assert "positive integer" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["serve", "--duration", "-1"])
        assert "positive number" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("warp:1", "unknown cluster design"),
            ("latency:0", "positive integers"),
            ("latency:1:lifo", "known policies"),
            ("latency:1:edf:extra", "design:replicas"),
        ],
    )
    def test_serve_rejects_bad_cluster_specs(self, capsys, spec, message):
        # Validated before any design search runs.
        assert main(["serve", "--cluster", spec]) == 2
        assert message in capsys.readouterr().err

    def test_serve_chaos_session_counts_faults(self, capsys, tmp_path):
        from repro.serving import report_from_json

        path = tmp_path / "chaos.json"
        out = run_cli(
            capsys,
            *self.SERVE,
            "--chaos", "die-at:0:40",
            "--max-retries", "1",
            "--replace-after-ms", "100",
            "--json", str(path),
        )
        assert "replicas lost/replaced" in out
        report = report_from_json(path.read_text())
        assert report.replicas_lost == 1
        assert report.replicas_replaced == 1
        assert (
            report.completed + report.shed + report.failed
            == report.submitted
        )

    @pytest.mark.parametrize(
        "argv, message",
        [
            (["--chaos", "explode:0:1"], "bad --chaos spec"),
            (["--chaos", "crash-at:0:0"], "positive integer"),
            (["--max-retries", "-1"], "--max-retries"),
            (["--transport-timeout", "5"], "--transport-timeout"),
        ],
    )
    def test_serve_rejects_bad_chaos_flags(self, capsys, argv, message):
        # Validated before any design search runs; --transport-timeout
        # without a wire transport is meaningless.
        assert main(["serve", *argv]) == 2
        assert message in capsys.readouterr().err

    def test_serve_rejects_nonpositive_transport_timeout(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--transport", "socket", "--transport-timeout", "0"])
        assert "positive number" in capsys.readouterr().err

    def test_worker_without_token_fails_fast(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_TOKEN", raising=False)
        assert main(["fleet", "worker", "--connect", "127.0.0.1:7000"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_FLEET_TOKEN" in err and "--token" in err

    def test_replicas_without_token_fails_fast(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_TOKEN", raising=False)
        assert main(["fleet", "replicas", "--listen", "127.0.0.1:0"]) == 2
        assert "REPRO_FLEET_TOKEN" in capsys.readouterr().err

    def test_serve_remote_without_token_fails_fast(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_TOKEN", raising=False)
        assert main(["serve", "--transport", "remote:127.0.0.1:7000"]) == 2
        assert "REPRO_FLEET_TOKEN" in capsys.readouterr().err

    def test_serve_mixed_cluster_with_shedding(self, capsys, tmp_path):
        from repro.serving import report_from_json

        path = tmp_path / "cluster.json"
        out = run_cli(
            capsys,
            "serve",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--avatars", "6",
            "--frames", "5",
            "--sim-frames", "4",
            "--cluster", "latency:1,throughput:2",
            "--router", "deadline",
            "--shed",
            "--deadline-tiers", "20,60",
            "--json", str(path),
        )
        assert "design 'latency'" in out and "design 'throughput'" in out
        assert "Serving report (cluster(deadline))" in out
        assert "group latency" in out and "group throughput" in out
        report = report_from_json(path.read_text())
        assert report.router == "deadline"
        assert {group.name for group in report.groups} == {
            "latency", "throughput",
        }
        assert report.completed + report.shed == report.submitted

    def test_serve_shed_without_cluster_is_honoured(self, capsys):
        # --shed on a single pool must actually enable admission control
        # (the report shows the shed SLO), not be silently dropped.
        out = run_cli(
            capsys,
            "serve",
            "--device", "Z7045",
            "--iterations", "2",
            "--population", "8",
            "--avatars", "12",
            "--frames", "8",
            "--sim-frames", "4",
            "--replicas", "1",
            "--deadline-ms", "30",
            "--shed",
        )
        assert "shed" in out
        assert "router" in out

    def test_serve_duration_sets_frame_count(self, capsys):
        out = run_cli(
            capsys,
            *self.SERVE,
            "--duration", "0.2",
            "--policy", "edf",
        )
        # 0.2 s at 30 FPS -> 6 frames per avatar, 4 avatars.
        assert "24/24 frames" in out


class TestSimulate:
    def test_simulate_saved_config(self, capsys, tmp_path):
        config_path = tmp_path / "cfg.json"
        run_cli(
            capsys,
            "explore",
            "alexnet",
            "--device", "KU115",
            "--iterations", "2",
            "--population", "10",
            "--save-config", str(config_path),
        )
        out = run_cli(
            capsys,
            "simulate",
            "alexnet",
            "--device", "KU115",
            "--config", str(config_path),
            "--frames", "4",
            "--timeline",
            "--timeline-width", "40",
        )
        assert "steady state" in out
        assert "timeline:" in out

    def test_simulate_explores_when_no_config(self, capsys):
        out = run_cli(
            capsys,
            "simulate",
            "alexnet",
            "--device", "KU115",
            "--frames", "4",
            "--iterations", "2",
            "--population", "10",
        )
        assert "end-to-end" in out


class TestExperimentCommand:
    def test_table1(self, capsys):
        out = run_cli(capsys, "experiment", "table1")
        assert "Table I" in out

    def test_fig3(self, capsys):
        out = run_cli(capsys, "experiment", "fig3")
        assert "DNNBuilder" in out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestGenerate:
    def test_generate_hls_project(self, capsys, tmp_path):
        out = run_cli(
            capsys,
            "generate",
            "alexnet",
            "--device", "KU115",
            "--iterations", "2",
            "--population", "10",
            "--output", str(tmp_path / "design"),
        )
        assert "explored design" in out
        top = (tmp_path / "design" / "fcad_top.cpp").read_text()
        assert "#pragma HLS DATAFLOW" in top
        assert (tmp_path / "design" / "design.json").exists()
