"""RemoteTransport: persistent replica server, reconnection, loud failure.

The contract under test: serving through ``remote:HOST:PORT`` is
bit-identical to in-process serving — including across a forced
disconnect/reconnect, because the server's per-session reply cache makes
resubmission idempotent — and an unrecoverably dead server surfaces as
*replica-level* faults: the session completes with the unserved frames
counted ``failed`` and the replicas marked lost, never a hang and never
a silently dropped frame.
"""

from __future__ import annotations

import dataclasses
import threading
from contextlib import contextmanager

import pytest

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.protocol import AuthError
from repro.dist.remote_transport import (
    RemoteTransport,
    profile_from_wire,
    profile_to_wire,
    serve_replicas,
)
from repro.serving import (
    ReplicaPool,
    canned_workload,
    get_transport,
    serve_workload,
)
from repro.serving.transport import REMOTE_TOKEN_ENV, parse_remote_spec
from repro.sim.runner import FrameLatencyProfile

PROFILE = FrameLatencyProfile(
    finish_ms=(8.0, 12.0, 16.0),
    first_frame_ms=8.0,
    steady_interval_ms=4.0,
    frequency_mhz=200.0,
)


@contextmanager
def replica_server(token: str = "t", fault: FaultInjector | None = None):
    stop = threading.Event()
    ready = threading.Event()
    box: dict[str, int] = {}

    def on_ready(port: int) -> None:
        box["port"] = port
        ready.set()

    thread = threading.Thread(
        target=serve_replicas,
        kwargs=dict(
            port=0,
            token=token,
            fault=fault,
            ready=on_ready,
            stop=stop,
            announce=False,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(5), "replica server never bound its port"
    try:
        yield box["port"]
    finally:
        stop.set()
        thread.join(timeout=5)


def remote_report(port: int, token: str = "t", **transport_kwargs):
    transport = RemoteTransport(
        "127.0.0.1",
        port,
        token=token,
        backoff_s=0.01,
        backoff_max_s=0.05,
        **transport_kwargs,
    )
    report = serve_workload(
        ReplicaPool(PROFILE, replicas=2, max_batch=8),
        canned_workload(avatars=4, frames_per_avatar=6),
        policy="edf",
        transport=transport,
    )
    return report, transport


@pytest.fixture(scope="module")
def inprocess_report():
    return serve_workload(
        ReplicaPool(PROFILE, replicas=2, max_batch=8),
        canned_workload(avatars=4, frames_per_avatar=6),
        policy="edf",
    )


class TestRemoteServing:
    def test_remote_matches_inprocess_bit_for_bit(self, inprocess_report):
        with replica_server() as port:
            report, transport = remote_report(port)
        assert report == inprocess_report
        assert transport.reconnects == 0
        assert transport.health == "closed"

    def test_forced_disconnect_reconnects_and_stays_identical(
        self, inprocess_report
    ):
        """The server drops the connection mid-session; the report doesn't
        change — resubmission hits the server's reply cache."""
        fault = FaultInjector(FaultPlan(drop_conn_after_decodes=3))
        with replica_server(fault=fault) as port:
            report, transport = remote_report(port)
        assert transport.reconnects == 1
        assert report.reconnects == 1  # surfaced into the report
        assert dataclasses.replace(report, reconnects=0) == inprocess_report

    def test_dead_server_fails_frames_not_session(self):
        """A server gone past its reconnect budget is a replica fault:
        the session still completes, every unserved frame resolves as
        ``failed``, and the lost replicas land in the report."""
        fault = FaultInjector(FaultPlan(kill_server_after_decodes=2))
        with replica_server(fault=fault) as port:
            report, _ = remote_report(port, max_retries=2)
        assert report.failed > 0
        assert report.replicas_lost == 2  # both proxies hit the dead server
        assert report.completed + report.failed == report.submitted
        assert any("dead" in g.health for g in report.groups) or not report.groups

    def test_wrong_token_is_an_auth_error(self):
        with replica_server(token="right") as port:
            with pytest.raises(AuthError):
                remote_report(port, token="wrong")


class TestRemoteTransportLookup:
    def test_get_transport_builds_remote_from_spec(self, monkeypatch):
        monkeypatch.setenv(REMOTE_TOKEN_ENV, "sekrit")
        transport = get_transport("remote:replicahost:7100")
        assert isinstance(transport, RemoteTransport)
        assert (transport.host, transport.port) == ("replicahost", 7100)
        assert transport.token == "sekrit"

    def test_instances_pass_through(self):
        transport = RemoteTransport("h", 1)
        assert get_transport(transport) is transport

    @pytest.mark.parametrize(
        "spec", ["remote:", "remote:nohost", "remote:h:0", "remote:h:99999"]
    )
    def test_malformed_remote_spec_rejected(self, spec):
        with pytest.raises(ValueError, match="remote:HOST:PORT"):
            parse_remote_spec(spec)

    def test_unknown_transport_mentions_remote(self):
        with pytest.raises(KeyError, match="remote:HOST:PORT"):
            get_transport("carrier-pigeon")

    def test_profile_wire_round_trip(self):
        assert profile_from_wire(profile_to_wire(PROFILE)) == PROFILE
