"""Tests for the ablation drivers and the max-parallelism customization."""

from __future__ import annotations

import pytest

from repro.devices.budget import ResourceBudget
from repro.dse.inbranch import optimize_branch
from repro.dse.space import Customization, get_pf
from repro.experiments.ablations import (
    run_ablation_alpha,
    run_ablation_parallelism,
    run_ablation_search,
)
from repro.quant.schemes import INT8


class TestMaxParallelismConstraints:
    def test_max_h_caps_h(self, decoder_plan):
        texture = decoder_plan.stage_by_name("texture").stage
        cfg = get_pf(texture, 10**6, max_h=1)
        assert cfg.h == 1
        cfg = get_pf(texture, 10**6, max_h=4)
        assert cfg.h <= 4

    def test_max_pf_caps_product(self, decoder_plan):
        stage = decoder_plan.branches[0].stages[2].stage
        cfg = get_pf(stage, 10**6, max_pf=64)
        assert cfg.pf <= 128  # one ladder step above the cap at most
        assert cfg.pf >= 64 or (
            cfg.cpf == stage.cpf_max and cfg.kpf == stage.kpf_max
        )

    def test_customization_validates_constraints(self):
        with pytest.raises(ValueError):
            Customization(batch_sizes=(1,), priorities=(1.0,), max_h=0)
        with pytest.raises(ValueError):
            Customization(batch_sizes=(1,), priorities=(1.0,), max_pf=0)

    def test_inbranch_respects_max_h(self, decoder_plan):
        budget = ResourceBudget(compute=2000, memory=1500, bandwidth_gbps=12.8)
        free = optimize_branch(decoder_plan.branches[1], budget, 1, INT8)
        capped = optimize_branch(
            decoder_plan.branches[1], budget, 1, INT8, max_h=1
        )
        assert all(cfg.h == 1 for cfg in capped.config.stages)
        assert capped.fps <= free.fps


class TestAblationDrivers:
    @pytest.fixture(scope="class")
    def parallelism(self):
        return run_ablation_parallelism(iterations=4, population=25)

    def test_3d_beats_2d(self, parallelism):
        assert parallelism.full_3d.fps > parallelism.two_level.fps
        assert parallelism.texture_speedup > 1.5

    def test_2d_configs_have_h_one(self, parallelism):
        # The decoder FPS under 2-D mirrors DNNBuilder's saturation story.
        assert parallelism.two_level.fps < 0.6 * parallelism.full_3d.fps

    def test_parallelism_render(self, parallelism):
        assert "H-partition" in parallelism.render()

    def test_search_strategies_ordered(self):
        result = run_ablation_search(iterations=3, population=20)
        assert (
            result.fitness["PSO (Algorithm 1)"]
            >= result.fitness["random sampling"]
        )
        assert "strategy" in result.render()

    def test_alpha_reduces_variance(self):
        result = run_ablation_alpha(
            alphas=(0.0, 0.5), iterations=4, population=25
        )
        assert result.variance(1) <= result.variance(0)
        assert "alpha" in result.render()
