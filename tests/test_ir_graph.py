"""Tests for the network graph: structure, topology, branch membership."""

from __future__ import annotations

import pytest

from repro.ir.graph import GraphError, NetworkGraph
from repro.ir.layer import (
    Activation,
    Concat,
    Conv2d,
    Input,
    ShapeError,
    TensorShape,
)


def small_graph() -> NetworkGraph:
    g = NetworkGraph("g")
    g.add("x", Input(shape=TensorShape(3, 8, 8)))
    g.add("c1", Conv2d(in_channels=3, out_channels=4, kernel=3), ("x",))
    g.add("a1", Activation(fn="relu"), ("c1",))
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError, match="duplicate"):
            g.add("c1", Activation(fn="relu"), ("a1",))

    def test_unknown_input_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError, match="unknown input"):
            g.add("c2", Activation(fn="relu"), ("nope",))

    def test_arity_checked(self):
        g = small_graph()
        with pytest.raises(GraphError, match="expects 2 inputs"):
            g.add("cat", Concat(num_inputs=2), ("a1",))

    def test_contains_and_len(self):
        g = small_graph()
        assert "c1" in g
        assert "zz" not in g
        assert len(g) == 3

    def test_node_lookup_error(self):
        with pytest.raises(GraphError, match="unknown node"):
            small_graph().node("missing")


class TestTopology:
    def test_topo_order_respects_dependencies(self):
        g = small_graph()
        order = g.topo_order()
        assert order.index("x") < order.index("c1") < order.index("a1")

    def test_outputs_are_sink_nodes(self):
        assert small_graph().output_names() == ["a1"]

    def test_inputs_listed(self):
        assert small_graph().input_names() == ["x"]

    def test_ancestors(self):
        g = small_graph()
        assert g.ancestors("a1") == {"x", "c1"}
        assert g.ancestors("x") == set()

    def test_successors(self):
        succ = small_graph().successors()
        assert succ["x"] == ["c1"]
        assert succ["a1"] == []


class TestBranchMembership:
    def test_fork_membership(self):
        g = NetworkGraph("fork")
        g.add("x", Input(shape=TensorShape(4, 8, 8)))
        g.add("shared", Conv2d(in_channels=4, out_channels=4, kernel=3), ("x",))
        g.add("left", Conv2d(in_channels=4, out_channels=2, kernel=3), ("shared",))
        g.add("right", Conv2d(in_channels=4, out_channels=2, kernel=3), ("shared",))
        membership = g.branch_membership()
        assert membership["shared"] == frozenset({0, 1})
        assert membership["left"] == frozenset({0})
        assert membership["right"] == frozenset({1})
        assert membership["x"] == frozenset({0, 1})

    def test_decoder_shared_front(self, decoder_graph):
        membership = decoder_graph.branch_membership()
        # Outputs: geometry (0), texture (1), warp_field (2).
        shared = [n for n, m in membership.items() if m == frozenset({1, 2})]
        assert len(shared) >= 15  # 5 x [C,A,U] blocks
        assert membership["geometry"] == frozenset({0})


class TestValidation:
    def test_valid_graph_passes(self):
        small_graph().validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            NetworkGraph("e").validate()

    def test_no_inputs_rejected(self):
        g = NetworkGraph("n")
        g.add("x", Input(shape=TensorShape(1, 1, 1)))
        g.add("a", Activation(fn="relu"), ("x",))
        # remove-input case is impossible by construction; check the
        # dangling-input case instead:
        g2 = NetworkGraph("d")
        g2.add("x", Input(shape=TensorShape(1, 1, 1)))
        with pytest.raises(GraphError, match="without consumers"):
            g2.validate()

    def test_shape_error_names_offending_node(self):
        g = NetworkGraph("s")
        g.add("x", Input(shape=TensorShape(3, 8, 8)))
        g.add("c", Conv2d(in_channels=4, out_channels=2, kernel=3), ("x",))
        with pytest.raises(ShapeError, match="'c'"):
            g.validate()

    def test_shapes_inferred_for_all_nodes(self, decoder_graph):
        shapes = decoder_graph.infer_shapes()
        assert set(shapes) == set(decoder_graph.node_names())

    def test_decoder_output_shapes_match_paper(self, decoder_graph):
        shapes = decoder_graph.infer_shapes()
        assert shapes["geometry"].as_tuple() == (3, 256, 256)
        assert shapes["texture"].as_tuple() == (3, 1024, 1024)
        assert shapes["warp_field"].as_tuple() == (2, 256, 256)

    def test_decoder_largest_fm_is_16x1024x1024(self, decoder_graph):
        shapes = decoder_graph.infer_shapes()
        largest = max(shapes.values(), key=lambda s: s.numel)
        assert largest.as_tuple() == (16, 1024, 1024)
