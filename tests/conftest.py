"""Shared fixtures: reference networks, plans, and small test graphs."""

from __future__ import annotations

import pytest

from repro.construction.reorg import build_pipeline_plan
from repro.ir.builder import GraphBuilder
from repro.ir.layer import BiasMode, TensorShape
from repro.models.benchmarks import build_alexnet, build_tiny_yolo, build_vgg16
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.models.mimic import build_mimic_decoder


@pytest.fixture(scope="session")
def decoder_graph():
    return build_codec_avatar_decoder()

@pytest.fixture(scope="session")
def mimic_graph():
    return build_mimic_decoder()


@pytest.fixture(scope="session")
def decoder_plan(decoder_graph):
    return build_pipeline_plan(decoder_graph)


@pytest.fixture(scope="session")
def mimic_plan(mimic_graph):
    return build_pipeline_plan(mimic_graph)


@pytest.fixture(scope="session")
def alexnet_graph():
    return build_alexnet()


@pytest.fixture(scope="session")
def vgg16_graph():
    return build_vgg16()


@pytest.fixture(scope="session")
def tiny_yolo_graph():
    return build_tiny_yolo()


def make_tiny_decoder(
    untied: bool = True, base: int = 4, channels: int = 8
) -> "NetworkGraph":
    """A miniature two-branch decoder with a shared front part.

    Structure mirrors the real decoder (shared CAU front, one HD-ish branch
    and one lightweight branch) at toy sizes so tests stay fast.
    """
    bias = BiasMode.UNTIED if untied else BiasMode.TIED
    b = GraphBuilder("tiny_decoder")
    z = b.input("z", TensorShape(channels, base, base))
    shared = b.cau_block(z, out_channels=2 * channels, kernel=3, bias=bias)
    big = b.cau_block(shared, out_channels=channels, kernel=3, bias=bias)
    b.conv(big, out_channels=3, kernel=3, bias=bias, name="texture")
    b.conv(shared, out_channels=2, kernel=3, bias=bias, name="warp")
    graph = b.graph
    graph.validate()
    return graph


def make_chain(depth: int = 3, channels: int = 8, size: int = 16):
    """A simple single-branch conv chain."""
    b = GraphBuilder("chain")
    x = b.input("x", TensorShape(3, size, size))
    for _ in range(depth):
        x = b.conv(x, out_channels=channels, kernel=3, bias=BiasMode.TIED)
        x = b.act(x, fn="relu")
    graph = b.graph
    graph.validate()
    return graph


@pytest.fixture()
def tiny_decoder():
    return make_tiny_decoder()


@pytest.fixture()
def tiny_plan():
    return build_pipeline_plan(make_tiny_decoder())


@pytest.fixture()
def chain_graph():
    return make_chain()
